//! Tokenizer for the rule language.
//!
//! Comments run from `%` or `//` to end of line. Identifiers starting with a
//! lowercase letter are predicate/function/constant names; identifiers
//! starting with an uppercase letter or `_` are variables (`_` alone is the
//! anonymous variable).

use std::fmt;

#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    Ident(String),
    Var(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Pipe,
    ColonDash,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Var(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Pipe => write!(f, "|"),
            Token::ColonDash => write!(f, ":-"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source location for diagnostics: byte offsets
/// `[start, end)` and the 1-based line/column of `start`.
#[derive(Clone, Debug)]
pub struct Spanned {
    pub tok: Token,
    pub line: u32,
    pub col: u32,
    pub start: u32,
    pub end: u32,
}

impl Spanned {
    /// The token's source span.
    pub fn span(&self) -> crate::span::Span {
        crate::span::Span::new(self.start, self.end, self.line, self.col)
    }
}

/// Lexical error with line information.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src` into a vector ending with `Eof`. Every token carries its
/// byte span and the 1-based line/column of its first character.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    // Byte offset of the current line's first character, for columns.
    let mut line_start: usize = 0;
    let n = bytes.len();

    while i < n {
        let c = bytes[i] as char;
        let tok_start = i;
        let tok_line = line;
        let tok_col = (i - line_start + 1) as u32;
        // Emitted after each branch advances `i` past the token.
        macro_rules! push {
            ($t:expr) => {
                out.push(Spanned {
                    tok: $t,
                    line: tok_line,
                    col: tok_col,
                    start: tok_start as u32,
                    end: i as u32,
                })
            };
        }
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            ' ' | '\t' | '\r' => i += 1,
            '%' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                i += 1;
                push!(Token::LParen);
            }
            ')' => {
                i += 1;
                push!(Token::RParen);
            }
            '[' => {
                i += 1;
                push!(Token::LBracket);
            }
            ']' => {
                i += 1;
                push!(Token::RBracket);
            }
            ',' => {
                i += 1;
                push!(Token::Comma);
            }
            '|' => {
                i += 1;
                push!(Token::Pipe);
            }
            '+' => {
                i += 1;
                push!(Token::Plus);
            }
            '-' => {
                i += 1;
                push!(Token::Minus);
            }
            '*' => {
                i += 1;
                push!(Token::Star);
            }
            '/' => {
                i += 1;
                push!(Token::Slash);
            }
            ':' => {
                if i + 1 < n && bytes[i + 1] == b'-' {
                    i += 2;
                    push!(Token::ColonDash);
                } else {
                    return Err(LexError {
                        line,
                        message: "expected ':-'".into(),
                    });
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    i += 2;
                    push!(Token::Le);
                } else {
                    i += 1;
                    push!(Token::Lt);
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    i += 2;
                    push!(Token::Ge);
                } else {
                    i += 1;
                    push!(Token::Gt);
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    i += 2;
                    push!(Token::EqEq);
                } else {
                    return Err(LexError {
                        line,
                        message: "single '=' is not an operator; use '=='".into(),
                    });
                }
            }
            '!' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    i += 2;
                    push!(Token::Ne);
                } else {
                    return Err(LexError {
                        line,
                        message: "expected '!='".into(),
                    });
                }
            }
            '.' => {
                i += 1;
                push!(Token::Dot);
            }
            '"' => {
                let start_line = line;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= n {
                        return Err(LexError {
                            line: start_line,
                            message: "unterminated string literal".into(),
                        });
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < n => {
                            let esc = bytes[i + 1] as char;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => {
                                    return Err(LexError {
                                        line,
                                        message: format!("unknown escape '\\{other}'"),
                                    })
                                }
                            });
                            i += 2;
                        }
                        b'\n' => {
                            return Err(LexError {
                                line: start_line,
                                message: "newline in string literal".into(),
                            });
                        }
                        b => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                push!(Token::Str(s));
            }
            '0'..='9' => {
                while i < n && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A '.' only continues the number if followed by a digit
                // ("30." is Int(30) then Dot, the rule terminator).
                let mut is_float = false;
                if i + 1 < n && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < n && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[tok_start..i];
                if is_float {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad float literal {text}"),
                    })?;
                    push!(Token::Float(v));
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        line,
                        message: format!("integer literal out of range: {text}"),
                    })?;
                    push!(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < n
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
                {
                    i += 1;
                }
                let text = &src[tok_start..i];
                let first = text.chars().next().unwrap();
                if first.is_ascii_uppercase() || first == '_' {
                    push!(Token::Var(text.to_owned()));
                } else {
                    push!(Token::Ident(text.to_owned()));
                }
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character '{other}'"),
                });
            }
        }
    }
    out.push(Spanned {
        tok: Token::Eof,
        line,
        col: (n - line_start + 1) as u32,
        start: n as u32,
        end: n as u32,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_rule_tokens() {
        let t = toks("cov(L, T) :- veh(\"enemy\", L, T).");
        assert_eq!(t[0], Token::Ident("cov".into()));
        assert_eq!(t[1], Token::LParen);
        assert_eq!(t[2], Token::Var("L".into()));
        assert!(t.contains(&Token::ColonDash));
        assert!(t.contains(&Token::Str("enemy".into())));
        assert_eq!(t[t.len() - 2], Token::Dot);
        assert_eq!(t[t.len() - 1], Token::Eof);
    }

    #[test]
    fn numbers_and_dot_disambiguation() {
        // "30." must lex as Int(30), Dot — the rule terminator.
        let t = toks(".window veh 30.");
        assert!(t.contains(&Token::Int(30)));
        assert_eq!(t.iter().filter(|x| **x == Token::Dot).count(), 2);
        let t = toks("x(1.5).");
        assert!(t.contains(&Token::Float(1.5)));
    }

    #[test]
    fn comparison_operators() {
        let t = toks("X <= 5, Y >= 2, Z < 1, W > 0, A == B, C != D");
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Lt));
        assert!(t.contains(&Token::Gt));
        assert!(t.contains(&Token::EqEq));
        assert!(t.contains(&Token::Ne));
    }

    #[test]
    fn comments_skipped() {
        let t = toks("% whole line\nfoo(X). // trailing\nbar(Y).");
        assert_eq!(t.iter().filter(|x| matches!(x, Token::Ident(_))).count(), 2);
    }

    #[test]
    fn primed_variables() {
        // d' style names from the paper are allowed via trailing quote.
        let t = toks("h(D, D')");
        assert!(matches!(&t[4], Token::Var(s) if s == "D'"));
    }

    #[test]
    fn variables_vs_identifiers() {
        let t = toks("foo Bar _baz _");
        assert_eq!(t[0], Token::Ident("foo".into()));
        assert_eq!(t[1], Token::Var("Bar".into()));
        assert_eq!(t[2], Token::Var("_baz".into()));
        assert_eq!(t[3], Token::Var("_".into()));
    }

    #[test]
    fn string_escapes() {
        let t = toks(r#"p("a\nb\"c")"#);
        assert!(t.contains(&Token::Str("a\nb\"c".into())));
    }

    #[test]
    fn errors_reported_with_line() {
        let err = lex("foo(X).\n@").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a = b").is_err());
    }

    #[test]
    fn list_tokens() {
        let t = toks("traj([X | R1, R2])");
        assert!(t.contains(&Token::LBracket));
        assert!(t.contains(&Token::Pipe));
        assert!(t.contains(&Token::RBracket));
    }
}
