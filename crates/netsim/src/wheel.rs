//! Deterministic hierarchical timer wheel (calendar queue) for the event
//! scheduler.
//!
//! Two tiers:
//!
//! * a **ring** of `WHEEL_SLOTS` one-millisecond slots covering the window
//!   `[base, base + WHEEL_SLOTS)`, with a 64-bit-word occupancy bitmap so
//!   empty stretches are skipped in O(slots/64);
//! * a **spill** tier (`BTreeMap<time, Vec<…>>`) for events beyond the
//!   window — long retention/holddown timers land here and migrate into the
//!   ring when the window advances.
//!
//! Determinism argument (the tie-break contract shared with the
//! `BinaryHeap` baseline): global pop order must be exactly `(at, tie)`,
//! where `tie = origin_node << 32 | per-origin counter` is unique but NOT
//! globally monotone across pushes — a later push by a lower-numbered
//! origin carries a smaller tie. Each ring slot holds events of a *single*
//! exact timestamp, kept sorted by tie via binary-search insertion, so the
//! slot front is always the slot minimum. Across slots the cursor visits
//! timestamps in increasing order, and every spill timestamp is
//! `>= base + WHEEL_SLOTS`, i.e. strictly after everything in the ring.
//! Spill buckets are per-exact-timestamp and tie-sorted the same way, and
//! a bucket is migrated wholesale into an *empty* ring slot (order
//! preserved). Hence the pop sequence is byte-identical to the heap's
//! `(at, tie)` order — the property that lets the sharded backend's
//! per-region wheels merge into the single-wheel oracle's exact journal.
//!
//! The simulator only ever pushes events at `at >= now`, which keeps the
//! cursor monotone; `push` debug-asserts it.

use crate::sim::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// Ring size in slots (1 ms each). Power of two so the slot index is a
/// mask. 4096 ms comfortably covers the bounded per-hop delay model
/// (default 5–30 ms plus ARQ backoff) and most protocol timers; longer
/// timers (windowed-replica retention) take the spill path.
pub const WHEEL_SLOTS: usize = 4096;
const SLOT_MASK: u64 = (WHEEL_SLOTS as u64) - 1;
const WORDS: usize = WHEEL_SLOTS / 64;

/// Operation counters for `sched.*` telemetry. Plain fields — the wheel is
/// single-threaded and the counters are flushed into a snapshot after the
/// run, never read on the hot path.
#[derive(Clone, Copy, Debug, Default)]
pub struct WheelStats {
    /// Events that entered the ring directly.
    pub ring_pushes: u64,
    /// Events that entered the spill tier.
    pub spill_pushes: u64,
    /// Spill buckets migrated into the ring on window advance.
    pub migrations: u64,
    /// Window advances (ring rebased onto a later interval).
    pub window_advances: u64,
}

/// A deterministic two-tier calendar queue over `(at, tie, item)` entries.
pub struct TimerWheel<T> {
    /// Ring slot `i` holds events with `at & SLOT_MASK == i` inside the
    /// current window, sorted by tie (binary-search insertion).
    slots: Vec<VecDeque<(SimTime, u64, T)>>,
    /// Occupancy bitmap over `slots`.
    bitmap: [u64; WORDS],
    /// Start of the window the ring currently covers (multiple of
    /// `WHEEL_SLOTS`). Invariant: `base <= cursor` whenever control is
    /// outside [`TimerWheel::pop`], so every future push (`at >= cursor`)
    /// lands at or after the window start — the window never jumps ahead
    /// of times that external code can still schedule.
    base: SimTime,
    /// Timestamp of the last popped event; pushes must not precede it.
    cursor: SimTime,
    /// Lower bound on the earliest pending timestamp: scans start here
    /// instead of rescanning from `cursor` every peek. Raised to the found
    /// timestamp by a scan (it *is* the minimum), lowered by any push below
    /// it — so it never skips a schedulable slot.
    hint: SimTime,
    /// Far-future events: exact timestamp → tie-sorted bucket.
    spill: BTreeMap<SimTime, Vec<(SimTime, u64, T)>>,
    ring_len: usize,
    spill_len: usize,
    pub stats: WheelStats,
}

impl<T> TimerWheel<T> {
    pub fn new() -> TimerWheel<T> {
        let mut slots = Vec::with_capacity(WHEEL_SLOTS);
        slots.resize_with(WHEEL_SLOTS, VecDeque::new);
        TimerWheel {
            slots,
            bitmap: [0; WORDS],
            base: 0,
            cursor: 0,
            hint: 0,
            spill: BTreeMap::new(),
            ring_len: 0,
            spill_len: 0,
            stats: WheelStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.ring_len + self.spill_len
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn slot_of(at: SimTime) -> usize {
        (at & SLOT_MASK) as usize
    }

    #[inline]
    fn mark(&mut self, slot: usize) {
        self.bitmap[slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn unmark(&mut self, slot: usize) {
        self.bitmap[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// Insert an event. `tie` must be unique among pending events at the
    /// same timestamp (the simulator's origin-keyed counters guarantee
    /// this), and `at` must not precede the last popped timestamp. Ties are
    /// not assumed monotone: the entry is binary-search inserted so each
    /// slot/bucket stays sorted by tie.
    pub fn push(&mut self, at: SimTime, tie: u64, item: T) {
        debug_assert!(at >= self.cursor, "event scheduled in the past");
        self.hint = self.hint.min(at);
        if at < self.base + WHEEL_SLOTS as SimTime {
            let slot = Self::slot_of(at);
            let dq = &mut self.slots[slot];
            debug_assert!(
                dq.front().is_none_or(|(a, _, _)| *a == at),
                "slot holds a foreign timestamp"
            );
            // Fast path: ties usually arrive in increasing order.
            if dq.back().is_none_or(|(_, t, _)| *t < tie) {
                dq.push_back((at, tie, item));
            } else {
                let pos = dq.partition_point(|&(_, t, _)| t < tie);
                dq.insert(pos, (at, tie, item));
            }
            self.mark(slot);
            self.ring_len += 1;
            self.stats.ring_pushes += 1;
        } else {
            let bucket = self.spill.entry(at).or_default();
            if bucket.last().is_none_or(|(_, t, _)| *t < tie) {
                bucket.push((at, tie, item));
            } else {
                let pos = bucket.partition_point(|&(_, t, _)| t < tie);
                bucket.insert(pos, (at, tie, item));
            }
            self.spill_len += 1;
            self.stats.spill_pushes += 1;
        }
    }

    /// Timestamp of the earliest pending event. Pure lookahead: never
    /// rebases the window or migrates anything, so a peek can never strand
    /// a timestamp that external code may still push to (the simulator
    /// peeks, breaks at a horizon, then injects workload *earlier* than the
    /// head — that push must stay legal). `&mut` only to raise the scan
    /// hint.
    pub fn next_at(&mut self) -> Option<SimTime> {
        if self.ring_len > 0 {
            let at = self.scan_ring().expect("ring_len > 0 ⇒ occupied slot");
            return Some(at);
        }
        // Ring empty: every pending event is in spill, and spill keys all
        // exceed base + WHEEL_SLOTS, so the earliest key is the answer.
        self.spill.keys().next().copied()
    }

    /// Full `(at, tie)` key of the earliest pending event — the comparison
    /// key the sharded scheduler uses to pick the globally-minimal region
    /// head. Pure lookahead like [`TimerWheel::next_at`].
    pub fn next_key(&mut self) -> Option<(SimTime, u64)> {
        if self.ring_len > 0 {
            let at = self.scan_ring().expect("ring_len > 0 ⇒ occupied slot");
            let e = self.slots[Self::slot_of(at)]
                .front()
                .expect("scanned slot is occupied");
            debug_assert_eq!(e.0, at);
            return Some((e.0, e.1));
        }
        self.spill.iter().next().map(|(&at, b)| (at, b[0].1))
    }

    /// Remove and return the earliest event as `(at, seq, item)`. This is
    /// the only place the window rebases: the popped event immediately
    /// becomes the new cursor, so the rebase can never outrun a future
    /// push.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.ring_len == 0 {
            if self.spill_len == 0 {
                return None;
            }
            let &first = self.spill.keys().next().expect("spill_len > 0");
            self.advance_window_to(first);
        }
        let at = self.scan_ring().expect("ring is non-empty");
        let slot = Self::slot_of(at);
        let entry = self.slots[slot].pop_front().expect("scan found entry");
        self.ring_len -= 1;
        if self.slots[slot].is_empty() {
            self.unmark(slot);
        }
        self.cursor = at;
        self.hint = at;
        debug_assert_eq!(entry.0, at);
        Some(entry)
    }

    /// Find the earliest occupied slot at or after the hint within the
    /// current window; raises the hint to it.
    fn scan_ring(&mut self) -> Option<SimTime> {
        let from = self.hint.max(self.base);
        let end = self.base + WHEEL_SLOTS as SimTime;
        if from >= end {
            return None;
        }
        let mut idx = Self::slot_of(from);
        // The window start is a multiple of WHEEL_SLOTS, so slot indexes
        // increase monotonically from `from` to the window end: no wrap.
        let mut word_i = idx / 64;
        let mut word = self.bitmap[word_i] & (!0u64 << (idx % 64));
        loop {
            if word != 0 {
                idx = word_i * 64 + word.trailing_zeros() as usize;
                let at = self.base + idx as SimTime;
                debug_assert!(at >= from);
                self.hint = at;
                return Some(at);
            }
            word_i += 1;
            if word_i >= WORDS {
                return None;
            }
            word = self.bitmap[word_i];
        }
    }

    /// Rebase the window so it contains `target`, migrating any spill
    /// buckets that now fall inside it. Only legal when the ring is empty.
    fn advance_window_to(&mut self, target: SimTime) {
        debug_assert_eq!(self.ring_len, 0, "rebase with events still ringed");
        let new_base = target - (target & SLOT_MASK);
        debug_assert!(new_base >= self.base);
        self.base = new_base;
        self.stats.window_advances += 1;
        let end = new_base + WHEEL_SLOTS as SimTime;
        // Migrate every spill bucket inside the new window. Buckets hold a
        // single exact timestamp sorted by tie; the target slots are
        // empty (ring was empty), so order is preserved wholesale.
        let keys: Vec<SimTime> = self.spill.range(..end).map(|(&k, _)| k).collect();
        for k in keys {
            debug_assert!(k >= new_base, "spill bucket stranded behind window");
            let bucket = self.spill.remove(&k).expect("listed key");
            let slot = Self::slot_of(k);
            self.spill_len -= bucket.len();
            self.ring_len += bucket.len();
            self.stats.migrations += 1;
            let dst = &mut self.slots[slot];
            debug_assert!(dst.is_empty());
            dst.extend(bucket);
            self.mark(slot);
        }
    }
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn empty_wheel() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.next_at(), None);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn fifo_within_slot() {
        let mut w = TimerWheel::new();
        w.push(10, 0, "a");
        w.push(10, 1, "b");
        w.push(5, 2, "c");
        assert_eq!(w.pop(), Some((5, 2, "c")));
        assert_eq!(w.pop(), Some((10, 0, "a")));
        assert_eq!(w.pop(), Some((10, 1, "b")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn spill_and_migrate() {
        let mut w = TimerWheel::new();
        w.push(3, 0, "near");
        let far = WHEEL_SLOTS as u64 * 3 + 17;
        w.push(far, 1, "far1");
        w.push(far, 2, "far2");
        w.push(far + 1, 3, "far3");
        assert_eq!(w.len(), 4);
        assert_eq!(w.pop(), Some((3, 0, "near")));
        assert_eq!(w.pop(), Some((far, 1, "far1")));
        assert_eq!(w.pop(), Some((far, 2, "far2")));
        assert_eq!(w.pop(), Some((far + 1, 3, "far3")));
        assert!(w.stats.spill_pushes >= 3);
        assert!(w.stats.window_advances >= 1);
    }

    #[test]
    fn push_into_current_tick_while_draining() {
        // A zero-delay timer set from inside an event handler lands in the
        // slot currently being drained and is inserted in tie order.
        let mut w = TimerWheel::new();
        w.push(7, 0, "first");
        w.push(7, 5, "last");
        assert_eq!(w.pop(), Some((7, 0, "first")));
        w.push(7, 2, "middle"); // below the slot's back: keyed insertion
        assert_eq!(w.pop(), Some((7, 2, "middle")));
        assert_eq!(w.pop(), Some((7, 5, "last")));
    }

    #[test]
    fn out_of_order_ties_sort_within_slot_and_spill() {
        // Origin-keyed ties are not monotone across pushes: a later push by
        // a lower-numbered origin carries a smaller tie and must still pop
        // first.
        let mut w = TimerWheel::new();
        w.push(9, 40, "d");
        w.push(9, 10, "a");
        w.push(9, 30, "c");
        w.push(9, 20, "b");
        let far = WHEEL_SLOTS as u64 * 2 + 3;
        w.push(far, 8, "y");
        w.push(far, 2, "x");
        assert_eq!(w.pop(), Some((9, 10, "a")));
        assert_eq!(w.pop(), Some((9, 20, "b")));
        assert_eq!(w.pop(), Some((9, 30, "c")));
        assert_eq!(w.pop(), Some((9, 40, "d")));
        assert_eq!(w.pop(), Some((far, 2, "x")));
        assert_eq!(w.pop(), Some((far, 8, "y")));
    }

    #[test]
    fn next_key_peeks_the_minimum_without_rebasing() {
        let mut w = TimerWheel::new();
        assert_eq!(w.next_key(), None);
        let far = WHEEL_SLOTS as u64 * 4 + 1;
        w.push(far, 7, 'y');
        assert_eq!(w.next_key(), Some((far, 7)));
        w.push(6, 9, 'a'); // peek must not have rebased past this
        w.push(6, 3, 'b');
        assert_eq!(w.next_key(), Some((6, 3)));
        assert_eq!(w.pop(), Some((6, 3, 'b')));
        assert_eq!(w.next_key(), Some((6, 9)));
    }

    #[test]
    fn far_push_to_empty_wheel_spills_then_pops() {
        let mut w = TimerWheel::new();
        w.push(2, 0, 'x');
        assert_eq!(w.pop(), Some((2, 0, 'x')));
        // The window must NOT rebase on push or peek: external code may
        // still schedule between the cursor and the far event.
        let far = WHEEL_SLOTS as u64 * 10;
        w.push(far, 1, 'y');
        assert_eq!(w.next_at(), Some(far));
        w.push(10, 2, 'z'); // earlier than the peeked head — still legal
        assert_eq!(w.pop(), Some((10, 2, 'z')));
        assert_eq!(w.pop(), Some((far, 1, 'y')));
        assert_eq!(w.pop(), None);
    }

    /// The load-bearing property: pop order is byte-identical to a binary
    /// heap ordered on (at, tie), under a hold-model workload mixing short
    /// hop delays, long timers, and same-tick ties. Ties mimic the
    /// simulator's origin-keyed scheme: unique, but with random high bits
    /// so later pushes regularly carry smaller ties.
    #[test]
    fn matches_heap_order_randomized() {
        let mut rng = StdRng::seed_from_u64(0x5EED_CA1E);
        let mut wheel = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let next_tie = |seq: &mut u64, rng: &mut StdRng| {
            let tie = (rng.gen::<u32>() as u64) << 32 | *seq;
            *seq += 1;
            tie
        };
        for i in 0..200u32 {
            let at = rng.gen_range(0..50);
            let tie = next_tie(&mut seq, &mut rng);
            wheel.push(at, tie, i);
            heap.push(Reverse((at, tie, i)));
        }
        let mut popped = 0usize;
        while let Some(Reverse((hat, htie, hitem))) = heap.pop() {
            let got = wheel.pop().expect("wheel has the same events");
            assert_eq!(got, (hat, htie, hitem), "divergence at pop {popped}");
            popped += 1;
            // Hold model: re-push with mixed short/long delays until a cap.
            if seq < 5_000 {
                let delay = match seq % 7 {
                    0 => 0,                       // same-tick
                    1..=4 => seq % 29,            // short hop delays
                    5 => 4_000 + (seq % 1_000),   // window-edge timers
                    _ => 10_000 + (seq % 20_000), // spill-tier retention
                };
                let at = hat + delay;
                let tie = next_tie(&mut seq, &mut rng);
                wheel.push(at, tie, popped as u32);
                heap.push(Reverse((at, tie, popped as u32)));
            }
        }
        assert!(wheel.is_empty());
        assert_eq!(popped, 5_000);
    }
}
