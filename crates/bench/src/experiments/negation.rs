//! Fig. 10: incremental maintenance with negation — an Example-1-style
//! alert query under a mixed insert/delete workload. Measures
//! communication by phase and verifies exactness against the oracle for
//! growing delete fractions.

use crate::common::run_case;
use crate::table::{f2, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensorlog_core::deploy::WorkloadEvent;
use sensorlog_core::{PassMode, Strategy};
use sensorlog_eval::UpdateKind;
use sensorlog_logic::{Symbol, Term, Tuple};
use sensorlog_netsim::{SimConfig, Topology};

/// Per-epoch alert with negation: a sighting is covered when a suppressor
/// reading from the same node exists for that epoch; deleting the
/// suppressor must re-raise the alert.
const ALERT: &str = r#"
    .output alert.
    cov(V, K) :- sight(V, K), supp(V, K).
    alert(V, K) :- not cov(V, K), sight(V, K).
"#;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

/// Epoch workload: every node sights every epoch; every 4th node has a
/// suppressor, a `frac` fraction of which are later deleted.
fn alert_events(topo: &Topology, epochs: u64, frac: f64, seed: u64) -> Vec<WorkloadEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for k in 1..=epochs {
        for node in topo.nodes() {
            let base = k * 12_000 + node.0 as u64 * 37;
            let key = |p: &str| {
                (
                    sym(p),
                    Tuple::new(vec![Term::Int(node.0 as i64), Term::Int(k as i64)]),
                )
            };
            let (sp, st) = key("sight");
            out.push(WorkloadEvent {
                at: base,
                node,
                pred: sp,
                tuple: st,
                kind: UpdateKind::Insert,
            });
            if node.0 % 4 == 0 {
                let (pp, pt) = key("supp");
                out.push(WorkloadEvent {
                    at: base + 500,
                    node,
                    pred: pp,
                    tuple: pt.clone(),
                    kind: UpdateKind::Insert,
                });
                if rng.gen::<f64>() < frac {
                    out.push(WorkloadEvent {
                        at: base + 45_000,
                        node,
                        pred: pp,
                        tuple: pt,
                        kind: UpdateKind::Delete,
                    });
                }
            }
        }
    }
    out.sort_by_key(|e| e.at);
    out
}

/// Fig. 10: delete fraction sweep on an 8×8 grid.
pub fn fig10() -> Table {
    let mut t = Table::new(
        "fig10",
        "negation maintenance under insert/delete mix (8x8 grid, Example-1-style query)",
        &[
            "del frac", "msgs", "store", "probe", "result", "alerts", "compl", "sound",
        ],
    );
    for frac in [0.0f64, 0.25, 0.5] {
        let topo = Topology::square_grid(8);
        let events = alert_events(&topo, 2, frac, 23);
        let p = run_case(
            ALERT,
            topo,
            Strategy::Perpendicular { band_width: 1.0 },
            PassMode::OnePass,
            SimConfig::default(),
            None,
            events,
            sym("alert"),
            120_000_000,
        );
        assert!(
            p.completeness > 0.999 && p.soundness > 0.999,
            "lossless negation maintenance must be exact at frac={frac}: compl {} sound {}",
            p.completeness,
            p.soundness
        );
        t.row(vec![
            f2(frac),
            p.total_tx.to_string(),
            p.tx_store.to_string(),
            p.tx_probe.to_string(),
            p.tx_result.to_string(),
            p.expected.to_string(),
            f2(p.completeness),
            f2(p.soundness),
        ]);
    }
    t
}
