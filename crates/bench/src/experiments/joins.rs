//! Join experiments: Figs. 4–7 (communication cost vs. network size, load
//! balance, multi-stream one-pass vs. multiple-pass, spatial constraints).

use crate::common::{join_strategies, run_case, run_cases, CaseSpec, RunPoint};
use crate::table::{f2, Table};
use sensorlog_core::deploy::WorkloadEvent;
use sensorlog_core::workload::UniformStreams;
use sensorlog_core::{PassMode, Strategy};
use sensorlog_eval::UpdateKind;
use sensorlog_logic::{Symbol, Term, Tuple};
use sensorlog_netsim::{SimConfig, Topology};

const JOIN2: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

fn join_workload(topo: &Topology, preds: &[&str], groups: u32, seed: u64) -> Vec<WorkloadEvent> {
    UniformStreams {
        preds: preds.iter().map(|p| sym(p)).collect(),
        interval: 8_000,
        duration: 16_000,
        delete_fraction: 0.0,
        delete_lag: 0,
        groups,
        seed,
    }
    .events(topo)
}

/// One (strategy, m) cell of the Fig. 4/5 sweep.
fn sweep_spec(strategy: Strategy, m: u32) -> CaseSpec {
    let topo = Topology::square_grid(m);
    // Selective join keys (≈1 partner per key): result volume stays
    // proportional to input volume as the network grows.
    let events = join_workload(&topo, &["r1", "r2"], m * m * 2, 41 + m as u64);
    CaseSpec {
        src: JOIN2.to_string(),
        topo,
        strategy,
        pass_mode: PassMode::OnePass,
        sim: SimConfig::default(),
        spatial_radius: None,
        events,
        output: sym("q"),
        horizon: 30_000_000,
    }
}

/// Fig. 4: total communication cost vs. network size for a two-stream join
/// under the four strategies, and Fig. 5: the load-balance view of the same
/// runs.
pub fn fig4_fig5() -> (Table, Table) {
    let sizes = [6u32, 8, 10, 12];
    let mut fig4 = Table::new(
        "fig4",
        "two-stream join: total messages vs network size (m x m grid)",
        &["m", "nodes", "PA", "Centroid", "Broadcast", "LocalStore"],
    );
    let mut fig5 = Table::new(
        "fig5",
        "two-stream join: hottest-node load (msgs) and imbalance (max/mean)",
        &["m", "PA max", "PA imb", "Centroid max", "Centroid imb"],
    );
    // The whole (size × strategy) sweep fans out across worker threads —
    // each cell is its own deterministic single-threaded simulation, and
    // `run_cases` hands results back in spec order.
    let specs: Vec<CaseSpec> = sizes
        .iter()
        .flat_map(|&m| join_strategies().into_iter().map(move |s| sweep_spec(s, m)))
        .collect();
    let all_points = run_cases(&specs);
    for (si, &m) in sizes.iter().enumerate() {
        let points: &[RunPoint] = &all_points[si * 4..si * 4 + 4];
        for p in points {
            assert!(
                p.completeness > 0.999 && p.soundness > 0.999,
                "lossless runs must be exact (m={m})"
            );
            assert!(p.expected > 0, "workload must produce joins (m={m})");
        }
        fig4.row(vec![
            m.to_string(),
            (m * m).to_string(),
            points[0].total_tx.to_string(),
            points[1].total_tx.to_string(),
            points[2].total_tx.to_string(),
            points[3].total_tx.to_string(),
        ]);
        fig5.row(vec![
            m.to_string(),
            points[0].max_node_load.to_string(),
            f2(points[0].imbalance),
            points[1].max_node_load.to_string(),
            f2(points[1].imbalance),
        ]);
    }
    (fig4, fig5)
}

/// Fig. 6: multi-stream joins — message cost and bytes for 2, 3, 4 streams
/// under one-pass vs multiple-pass PA (10×10 grid).
pub fn fig6() -> Table {
    let mut t = Table::new(
        "fig6",
        "n-stream join on 10x10 grid: one-pass vs multiple-pass PA",
        &[
            "streams",
            "1pass msgs",
            "1pass KB",
            "mpass msgs",
            "mpass KB",
        ],
    );
    let ns = [2usize, 3, 4];
    let mut specs = Vec::new();
    for &n in &ns {
        let preds: Vec<String> = (1..=n).map(|i| format!("r{i}")).collect();
        let pred_refs: Vec<&str> = preds.iter().map(String::as_str).collect();
        let body: Vec<String> = (1..=n).map(|i| format!("r{i}(N{i}, X{i}, K)")).collect();
        let head_args: Vec<String> = (1..=n).map(|i| format!("X{i}")).collect();
        let src = format!(
            ".output q.\nq({}) :- {}.\n",
            head_args.join(", "),
            body.join(", ")
        );
        for mode in [PassMode::OnePass, PassMode::MultiPass] {
            let topo = Topology::square_grid(10);
            // Tight groups keep the n-way join output bounded.
            let events = join_workload(&topo, &pred_refs, 120, 77);
            specs.push(CaseSpec {
                src: src.clone(),
                topo,
                strategy: Strategy::Perpendicular { band_width: 1.0 },
                pass_mode: mode,
                sim: SimConfig::default(),
                spatial_radius: None,
                events,
                output: sym("q"),
                horizon: 60_000_000,
            });
        }
    }
    let points = run_cases(&specs);
    for (i, &n) in ns.iter().enumerate() {
        let mut row = vec![n.to_string()];
        for p in &points[i * 2..i * 2 + 2] {
            assert!(p.completeness > 0.999, "lossless run must be complete");
            assert!(p.expected > 0, "workload must produce joins (n={n})");
            row.push(p.total_tx.to_string());
            row.push(f2(p.total_bytes as f64 / 1024.0));
        }
        t.row(row);
    }
    t
}

/// Fig. 7: spatial join constraints — cost vs constraint radius on a 12×12
/// grid. Tuples carry their source location; the join predicate requires
/// `dist(L1, L2) <= R`, letting PA truncate both regions to radius R.
pub fn fig7() -> Table {
    let mut t = Table::new(
        "fig7",
        "spatial constraint radius vs PA communication cost (12x12 grid)",
        &["radius", "msgs", "KB", "results"],
    );
    let m = 12u32;
    for radius in [2.0f64, 4.0, 6.0, 8.0, 100.0] {
        let src = format!(
            ".output q.\nq(L1, L2, T) :- s1(L1, T), s2(L2, T), dist(L1, L2) <= {radius}.\n"
        );
        let topo = Topology::square_grid(m);
        // Location-bearing workload: loc(x, y) from the source node.
        let mut events = Vec::new();
        let mut value = 0i64;
        for node in topo.nodes() {
            let (x, y) = topo.grid_coords(node).unwrap();
            for (i, pred) in ["s1", "s2"].iter().enumerate() {
                value += 1;
                let at = 1_000 + (node.0 as u64 * 2 + i as u64) * 500;
                events.push(WorkloadEvent {
                    at,
                    node,
                    pred: sym(pred),
                    tuple: Tuple::new(vec![
                        Term::app("loc", vec![Term::Int(x as i64), Term::Int(y as i64)]),
                        Term::Int(7), // shared T: everything joins
                    ]),
                    kind: UpdateKind::Insert,
                });
            }
        }
        let _ = value;
        let p = run_case(
            &src,
            topo,
            Strategy::Perpendicular { band_width: 1.0 },
            PassMode::OnePass,
            SimConfig::default(),
            Some(radius),
            events,
            sym("q"),
            120_000_000,
        );
        assert!(
            p.completeness > 0.999,
            "truncation must preserve spatially-constrained joins (r={radius}): {}",
            p.completeness
        );
        t.row(vec![
            if radius > 99.0 {
                "inf".into()
            } else {
                format!("{radius:.0}")
            },
            p.total_tx.to_string(),
            f2(p.total_bytes as f64 / 1024.0),
            p.expected.to_string(),
        ]);
    }
    t
}
