//! # sensorlog-telemetry
//!
//! Workspace-wide observability: a deterministic, allocation-light metrics
//! registry (counters / gauges / fixed-bucket histograms keyed by
//! `(scope, name)`), a span-based phase profiler with zero-cost-when-disabled
//! guards (the same `Option`-gated pattern as `netsim`'s `TraceSink`), and
//! exporters (JSONL snapshot, Prometheus-style text, human-readable table).
//!
//! Handles are `Arc<Mutex<…>>` clones so the sharded simulator's region
//! workers can record from their lockstep windows; the hot per-event paths
//! stay lock-free (workers accumulate into thread-local scratch and merge
//! at window barriers — only coarse-grained recording takes the lock).
//! Determinism is a hard invariant of the workspace — all iteration orders
//! are `BTreeMap`-sorted and no wall-clock values leak into anything that
//! feeds a trace hash.
//!
//! ```
//! use sensorlog_telemetry::{Scope, Telemetry, BYTES_BUCKETS};
//!
//! let tele = Telemetry::enabled();
//! tele.add(Scope::Pred("path"), "sent_probe", 3);
//! tele.observe(Scope::Node(7), "tx_bytes", BYTES_BUCKETS, 48);
//! {
//!     let _span = tele.span("eval.round"); // wall-time recorded on drop
//! }
//! let snap = tele.snapshot();
//! assert_eq!(snap.counter("pred:path", "sent_probe"), 3);
//! assert!(snap.to_jsonl().contains("\"type\":\"counter\""));
//! ```

mod export;
mod histogram;
mod profiler;
mod registry;

pub use export::{CounterRow, GaugeRow, HistRow, PhaseRow, Snapshot};
pub use histogram::{Histogram, MergeError};
pub use profiler::{PhaseStat, Profiler, Span};
pub use registry::{CounterId, GaugeId, HistId, Key, MetricsRegistry, Scope};

use parking_lot::Mutex;
use std::sync::Arc;
use std::sync::MutexGuard;

/// Standard byte-size buckets (upper-inclusive bounds) for message-size
/// histograms.
pub const BYTES_BUCKETS: &[u64] = &[8, 16, 32, 64, 128, 256, 512, 1024];

/// Standard latency buckets in simulated milliseconds.
pub const SIM_MS_BUCKETS: &[u64] = &[10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000];

struct TelemetryInner {
    registry: Mutex<MetricsRegistry>,
    profiler: Profiler,
}

/// Cheap clone-handle to a shared registry + profiler. The disabled handle
/// is a `None` and every recording call is a single branch — safe to leave
/// in release hot paths.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Telemetry(enabled)"
        } else {
            "Telemetry(disabled)"
        })
    }
}

impl Telemetry {
    /// An enabled handle backed by a fresh registry and profiler.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                registry: Mutex::new(MetricsRegistry::new()),
                profiler: Profiler::enabled(),
            })),
        }
    }

    /// The no-op handle: every call is one branch and returns immediately.
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increment counter `(scope, name)` by 1.
    #[inline]
    pub fn bump(&self, scope: Scope, name: &'static str) {
        self.add(scope, name, 1);
    }

    /// Increment counter `(scope, name)` by `n`.
    #[inline]
    pub fn add(&self, scope: Scope, name: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().bump(scope, name, n);
        }
    }

    /// Raise gauge `(scope, name)` to `v` if `v` is larger (peak semantics).
    #[inline]
    pub fn gauge_max(&self, scope: Scope, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().gauge_max(scope, name, v);
        }
    }

    /// Set gauge `(scope, name)` to `v`.
    #[inline]
    pub fn gauge_set(&self, scope: Scope, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().gauge_set(scope, name, v);
        }
    }

    /// Observe `v` in histogram `(scope, name)` with the given bucket bounds.
    #[inline]
    pub fn observe(&self, scope: Scope, name: &'static str, bounds: &'static [u64], v: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().observe(scope, name, bounds, v);
        }
    }

    /// Open a wall-time span for `phase`; the elapsed time is recorded when
    /// the returned guard drops. Disabled handles return an inert guard.
    #[inline]
    pub fn span(&self, phase: &'static str) -> Span {
        match &self.inner {
            Some(inner) => inner.profiler.span(phase),
            None => Span::inert(),
        }
    }

    /// Record `dt` simulated milliseconds against `phase`.
    #[inline]
    pub fn record_sim(&self, phase: &'static str, dt: u64) {
        if let Some(inner) = &self.inner {
            inner.profiler.record_sim(phase, dt);
        }
    }

    /// A clone of the underlying profiler (disabled if this handle is).
    pub fn profiler(&self) -> Profiler {
        match &self.inner {
            Some(inner) => inner.profiler.clone(),
            None => Profiler::disabled(),
        }
    }

    /// Locked access to the registry; `None` when disabled.
    pub fn registry(&self) -> Option<MutexGuard<'_, MetricsRegistry>> {
        self.inner.as_ref().map(|i| i.registry.lock())
    }

    /// Locked mutable access to the registry; `None` when disabled.
    pub fn registry_mut(&self) -> Option<MutexGuard<'_, MetricsRegistry>> {
        self.inner.as_ref().map(|i| i.registry.lock())
    }

    /// Export everything recorded so far. Disabled handles export an empty
    /// snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        if let Some(inner) = &self.inner {
            snap.absorb_registry(&inner.registry.lock());
            snap.absorb_profiler(&inner.profiler);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.bump(Scope::Global, "x");
        t.observe(Scope::Node(1), "h", BYTES_BUCKETS, 9);
        t.record_sim("p", 10);
        drop(t.span("p"));
        assert!(t.registry().is_none());
        let snap = t.snapshot();
        assert!(snap.counters.is_empty() && snap.phases.is_empty());
    }

    #[test]
    fn handle_clones_share_state() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        t.bump(Scope::Pred("q"), "sent_store");
        t2.add(Scope::Pred("q"), "sent_store", 4);
        assert_eq!(t.snapshot().counter("pred:q", "sent_store"), 5);
    }

    #[test]
    fn span_records_wall_time() {
        let t = Telemetry::enabled();
        {
            let _s = t.span("work");
        }
        {
            let _s = t.span("work");
        }
        let snap = t.snapshot();
        let row = snap.phases.iter().find(|p| p.name == "work").unwrap();
        assert_eq!(row.count, 2);
    }
}
