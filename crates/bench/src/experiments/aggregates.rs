//! Fig. 14: in-network aggregation — TAG partial aggregation vs. naive
//! central collection, the comparison behind the paper's pointer to
//! "specialized distributed techniques such as TAG \[32\]" (Sec. IV-C).

use crate::table::{f2, Table};
use sensorlog_core::agg::{compile_aggregate, oracle_value, run_central_collection, run_tag};
use sensorlog_logic::parse_program;
use sensorlog_netsim::{NodeId, SimConfig, Topology};

const AVG: &str = ".output mean.\nmean(avg<V>) :- reading(N, V).\n";

/// Fig. 14: one aggregate epoch per grid size, TAG vs central collection.
pub fn fig14() -> Table {
    let mut t = Table::new(
        "fig14",
        "global avg query: TAG vs central collection (messages per epoch)",
        &["m", "nodes", "TAG msgs", "central msgs", "saving"],
    );
    let query = compile_aggregate(&parse_program(AVG).unwrap()).unwrap();
    for m in [4u32, 8, 12, 16] {
        let topo = Topology::square_grid(m);
        let n = topo.len();
        let readings: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let root = NodeId(0);
        let tag = run_tag(&query, &topo, root, &readings, SimConfig::default());
        let central = run_central_collection(&query, &topo, root, &readings);
        let oracle = oracle_value(AVG, &query, &readings).unwrap();
        assert!((tag.value - oracle).abs() < 1e-9, "TAG diverged at m={m}");
        assert!(
            (central.value - oracle).abs() < 1e-9,
            "central diverged at m={m}"
        );
        t.row(vec![
            m.to_string(),
            n.to_string(),
            tag.messages.to_string(),
            central.messages.to_string(),
            format!("{}x", f2(central.messages as f64 / tag.messages as f64)),
        ]);
    }
    t
}
