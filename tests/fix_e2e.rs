//! End-to-end tests for `sensorlog fix`: the machine-applicable rewrite
//! applier must be idempotent, `--dry-run` must never touch the file, and
//! applying fixes to the seed examples must not change what the programs
//! compute (the rewrites are declarations and plane-local rule splits, not
//! semantic edits).

use sensorlog::logic::diag::{check_source, fix_source, BoundParams};
use sensorlog::prelude::*;
use std::collections::BTreeSet;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sensorlog"))
}

fn examples() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir("examples/programs").unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "dl") {
            let src = std::fs::read_to_string(&path).unwrap();
            out.push((path.display().to_string(), src));
        }
    }
    assert!(out.len() >= 5, "example corpus went missing");
    out
}

/// `fix_source` reaches a true fixpoint: running it on its own output
/// applies nothing and returns the input unchanged.
#[test]
fn fix_is_idempotent_on_examples() {
    let reg = BuiltinRegistry::standard();
    let params = BoundParams::default();
    for (path, src) in examples() {
        let first = fix_source(&src, &reg, &params);
        assert_eq!(first.remaining, 0, "{path}: fix did not converge");
        let second = fix_source(&first.fixed, &reg, &params);
        assert!(
            second.applied.is_empty(),
            "{path}: second fix pass still applied {:?}",
            second.applied
        );
        assert_eq!(second.fixed, first.fixed, "{path}: fix is not idempotent");
    }
}

/// After fixing, no machine-applicable suggestion survives — in particular
/// every `comm.widen` the analyzer can repair is gone.
#[test]
fn fix_resolves_every_machine_applicable_suggestion() {
    let reg = BuiltinRegistry::standard();
    let params = BoundParams::default();
    let widen = "\
.base a. .base b. .base c.
.window a 10. .window b 10. .window c 10.
.output big.
mid(X, Y) :- a(X, K), b(K, Y).
big(X, Z) :- mid(X, Y), c(Y, Z).
";
    let before = check_source(widen, &reg, &params);
    assert!(
        before.diags.iter().any(|d| d.code == "comm.widen"),
        "fixture no longer triggers comm.widen"
    );
    let out = fix_source(widen, &reg, &params);
    assert_eq!(out.remaining, 0);
    let after = check_source(&out.fixed, &reg, &params);
    assert!(
        !after.diags.iter().any(|d| d.code == "comm.widen"),
        "comm.widen survived fix:\n{}",
        after.to_text()
    );
    assert!(
        after
            .diags
            .iter()
            .all(|d| d.suggestions.iter().all(|s| !s.machine_applicable)),
        "machine-applicable suggestions survived fix:\n{}",
        after.to_text()
    );
}

/// `--dry-run` reports pending fixes with exit code 2 and leaves the file
/// byte-identical; a clean file exits 0.
#[test]
fn dry_run_never_touches_the_file() {
    let dir = std::env::temp_dir().join(format!("sensorlog_fix_dry_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sptree.dl");
    let src = std::fs::read_to_string("examples/programs/sptree.dl").unwrap();
    std::fs::write(&path, &src).unwrap();

    let status = bin()
        .args(["fix", path.to_str().unwrap(), "--dry-run"])
        .status()
        .unwrap();
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        src,
        "--dry-run modified the file"
    );
    let dry_code = status.code().unwrap();
    assert!(dry_code == 0 || dry_code == 2, "unexpected exit {dry_code}");

    if dry_code == 2 {
        // Apply for real, then dry-run again: now clean, exit 0.
        assert!(bin()
            .args(["fix", path.to_str().unwrap()])
            .status()
            .unwrap()
            .success());
        let again = bin()
            .args(["fix", path.to_str().unwrap(), "--dry-run"])
            .status()
            .unwrap();
        assert_eq!(
            again.code(),
            Some(0),
            "fixed file still reports pending fixes"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Applying fixes preserves semantics: for every seed example with at
/// least one rule, centralized evaluation over a deterministic fact set
/// produces the same output relations before and after fixing. (`fix` only
/// adds declarations and local helper splits — outputs must not move.)
#[test]
fn fix_preserves_semantics_on_examples() {
    let reg = BuiltinRegistry::standard();
    let params = BoundParams::default();
    for (path, src) in examples() {
        let fixed = fix_source(&src, &reg, &params).fixed;
        if fixed == src {
            continue;
        }
        let out_a = eval_outputs(&src, &path);
        let out_b = eval_outputs(&fixed, &path);
        assert_eq!(out_a, out_b, "{path}: fix changed the computed outputs");
    }
}

/// Evaluate a program centrally over a small deterministic EDB derived
/// from the predicates it declares as base streams, and collect the output
/// relations as printable strings.
fn eval_outputs(src: &str, label: &str) -> BTreeSet<String> {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("{label}: {e}"));
    let reg = BuiltinRegistry::standard();
    let analysis = analyze(&prog, &reg).unwrap_or_else(|e| panic!("{label}: {e}"));
    let outputs = analysis.program.outputs.clone();
    let mut edb = Database::new();
    for &p in &analysis.program.edb_preds() {
        let arity = analysis
            .program
            .rules
            .iter()
            .flat_map(|r| r.body.iter())
            .find_map(|l| match l {
                sensorlog::logic::ast::Literal::Pos(a) | sensorlog::logic::ast::Literal::Neg(a)
                    if a.pred == p =>
                {
                    Some(a.args.len())
                }
                _ => None,
            })
            .unwrap_or(1);
        // Small deterministic relation: tuples over {0, 1, 2}.
        for i in 0..3i64 {
            let args: Vec<Term> = (0..arity).map(|k| Term::Int((i + k as i64) % 3)).collect();
            edb.insert(p, Tuple::new(args));
        }
    }
    let engine = Engine::new(analysis, reg);
    let db = engine.run(&edb).unwrap_or_else(|e| panic!("{label}: {e}"));
    let mut out = BTreeSet::new();
    for p in outputs {
        for t in db.sorted(p) {
            out.insert(format!("{p}{t}"));
        }
    }
    out
}
