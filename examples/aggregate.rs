//! In-network aggregation: a global aggregate query compiled onto the TAG
//! gathering-tree substrate — the route the paper prescribes for aggregates
//! (Sec. IV-C: "specialized distributed techniques such as TAG [32]").
//!
//! ```text
//! cargo run --example aggregate
//! ```

use sensorlog::core::agg::{compile_aggregate, oracle_value, run_central_collection, run_tag};
use sensorlog::prelude::*;

const QUERY: &str = r#"
    % Network-wide mean temperature.
    .output mean.
    mean(avg<V>) :- temp(N, V).
"#;

fn main() {
    let prog = parse_program(QUERY).expect("parses");
    let query = compile_aggregate(&prog).expect("TAG-compilable global aggregate");
    println!(
        "query: {:?} over stream `{}` (value column {})",
        query.op, query.source, query.value_col
    );

    let topo = Topology::square_grid(8);
    let root = NodeId(0);
    // One temperature reading per node: a plausible field gradient.
    let readings: Vec<f64> = topo
        .nodes()
        .map(|n| {
            let (x, y) = topo.position(n);
            // Distinct per node (x + y/10 is injective for y < 10), so
            // the bag/set aggregate semantics coincide (see core::agg doc).
            18.0 + x + 0.1 * y
        })
        .collect();

    let tag = run_tag(&query, &topo, root, &readings, SimConfig::default());
    let central = run_central_collection(&query, &topo, root, &readings);
    let oracle = oracle_value(QUERY, &query, &readings).expect("oracle evaluates");

    println!("\n64-node grid, one epoch:");
    println!(
        "  TAG in-network:      value {:>8.3}  — {:>4} messages",
        tag.value, tag.messages
    );
    println!(
        "  central collection:  value {:>8.3}  — {:>4} messages",
        central.value, central.messages
    );
    println!("  deductive oracle:    value {oracle:>8.3}");
    assert!((tag.value - oracle).abs() < 1e-6);
    assert!((central.value - oracle).abs() < 1e-6);
    println!(
        "\nTAG saves {:.1}x the messages by merging partial aggregates up the tree.",
        central.messages as f64 / tag.messages as f64
    );
}
