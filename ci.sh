#!/usr/bin/env bash
# Repo CI gate: formatting, lints, full test suite.
#
#   ./ci.sh            # everything
#   ./ci.sh --fast     # skip the release build
#
# Mirrors what reviewers run by hand; keep it boring and fast. All steps
# are offline (vendored deps only).

set -euo pipefail
cd "$(dirname "$0")"

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q

if [[ "$fast" -eq 0 ]]; then
    echo "== cargo build --release =="
    cargo build --release -q

    # Telemetry pipeline end-to-end + snapshot-schema golden check; writes
    # BENCH_smoke.json (gitignored) as the inspectable artifact.
    echo "== bench smoke (--quick) =="
    cargo run -q --release -p sensorlog-bench --bin smoke -- --quick
fi

echo "CI OK"
