//! Partial results and per-node join processing (Fig. 1).
//!
//! A probe traversing its join-computation region carries a set of
//! [`Partial`]s per rule. At each node, every partial is extended with the
//! locally stored (replicated) tuples of still-unbound subgoals — producing
//! new partials *without discarding the originals*, exactly the one-pass
//! scheme of Fig. 1: "the computed partial results along with the incoming
//! partial results are all forwarded to the next node". Comparisons and
//! builtins evaluate as soon as their variables bind; bound negated
//! subgoals are checked against each node's fragments and kill the result
//! on a match ("delete partial or complete results that match with a tuple
//! in some S_j", Sec. IV-B).

use crate::plan::DistProgram;
use crate::tupleid::TupleId;
use sensorlog_eval::eval_body::sem_match_args;
use sensorlog_eval::relation::Database;
use sensorlog_logic::ast::{Literal, Rule};
use sensorlog_logic::intern;
use sensorlog_logic::unify::Subst;
use sensorlog_logic::{Symbol, Term, Tuple};
use sensorlog_netsim::SimTime;

/// A partial result: bindings accumulated so far plus the derivation
/// inputs. `bound` has one flag per body literal (true for the pinned
/// occurrence and every joined positive subgoal; checks flip their flag
/// when they evaluate).
#[derive(Clone, PartialEq, Debug)]
pub struct Partial {
    pub bindings: Vec<(Symbol, Term)>,
    pub bound: Vec<bool>,
    pub inputs: Vec<(u16, TupleId)>,
}

impl Partial {
    pub fn subst(&self) -> Subst {
        let mut s = Subst::new();
        for (v, t) in &self.bindings {
            s.bind(*v, t.clone());
        }
        s
    }

    fn absorb(&mut self, s: &Subst) {
        // Keep bindings sorted by variable for canonical comparison.
        let mut all: Vec<(Symbol, Term)> = s.iter().map(|(v, t)| (*v, t.clone())).collect();
        all.sort_by_key(|(v, _)| *v);
        self.bindings = all;
    }

    /// All positive subgoals joined and all checks passed?
    pub fn is_complete(&self, shape: &RuleShape) -> bool {
        shape
            .positives
            .iter()
            .chain(shape.checks.iter())
            .all(|&i| self.bound[i])
    }

    /// Approximate wire size.
    pub fn byte_size(&self) -> usize {
        self.bindings
            .iter()
            .map(|(v, t)| v.as_str().len() + t.byte_size())
            .sum::<usize>()
            + self.inputs.len() * 18
            + self.bound.len() / 8
            + 4
    }
}

/// Precomputed literal classification for a rule.
#[derive(Clone, Debug)]
pub struct RuleShape {
    /// Indexes of positive relational subgoals.
    pub positives: Vec<usize>,
    /// Indexes of negated subgoals.
    pub negations: Vec<usize>,
    /// Indexes of comparisons and builtin predicates.
    pub checks: Vec<usize>,
}

impl RuleShape {
    pub fn of(rule: &Rule) -> RuleShape {
        let mut shape = RuleShape {
            positives: Vec::new(),
            negations: Vec::new(),
            checks: Vec::new(),
        };
        for (i, lit) in rule.body.iter().enumerate() {
            match lit {
                Literal::Pos(_) => shape.positives.push(i),
                Literal::Neg(_) => shape.negations.push(i),
                Literal::Cmp(..) | Literal::Builtin(_) => shape.checks.push(i),
            }
        }
        shape
    }

    pub fn has_negation_other_than(&self, pinned: Option<usize>) -> bool {
        self.negations.iter().any(|&i| Some(i) != pinned)
    }
}

/// Seed a partial by pinning body literal `occ` (positive or negated) to
/// the update's tuple. Returns `None` when the tuple doesn't match the
/// pattern. The pinned input is recorded only for positive occurrences
/// (derivations list the non-negated subgoals, Definition 2).
pub fn seed_partial(
    prog: &DistProgram,
    rule: &Rule,
    occ: usize,
    negated: bool,
    tuple: &Tuple,
    id: TupleId,
) -> Option<Partial> {
    let atom = rule.body[occ].atom().expect("relational occurrence");
    let mut s = Subst::new();
    let terms = intern::boundary(|| tuple.terms());
    if !sem_match_args(&prog.reg, &atom.args, &terms, &mut s) {
        return None;
    }
    let mut p = Partial {
        bindings: Vec::new(),
        bound: vec![false; rule.body.len()],
        inputs: Vec::new(),
    };
    p.bound[occ] = true;
    if !negated {
        p.inputs.push((occ as u16, id));
    }
    p.absorb(&s);
    Some(p)
}

/// Local fragment lookup context at a node.
pub struct LocalCtx<'a> {
    pub prog: &'a DistProgram,
    pub db: &'a Database,
    /// IDs of locally stored tuples, for derivation inputs.
    pub id_of: &'a dyn Fn(Symbol, &Tuple) -> Option<TupleId>,
    /// Probe event timestamp (Theorem 3 visibility).
    pub tau: SimTime,
    /// The probe's update tuple ID: ties in local timestamps serialize by
    /// tuple ID (Definition 2), so a replica generated at exactly `tau`
    /// participates only when its ID is ≤ the update's — each same-instant
    /// pair is then derived by exactly one of the two probes.
    pub update_id: TupleId,
    /// Generous positive matching for fault-plane delete probes. Under
    /// crash/partition delays a tombstone can reach a replica node *after*
    /// a newer insert's probe joined with the stale replica, so the
    /// timestamp discipline alone under-retracts: the delete probe excludes
    /// exactly the newer generations whose spurious derivations it must
    /// kill. A generous delete probe extends through every stored fragment
    /// regardless of visibility; over-emission is safe because deltas are
    /// keyed by exact input ids (any key containing the deleted id must die,
    /// and a `-1` for a never-derived key is absorbed by the owner's
    /// clamped counts). Negation kills stay strict.
    pub generous: bool,
}

impl<'a> LocalCtx<'a> {
    /// Does this replica participate in the probe (window, tombstone, and
    /// timestamp-tie discipline)?
    fn participates(&self, pred: Symbol, tuple: &Tuple) -> bool {
        let Some(m) = self.db.relation(pred).and_then(|r| r.meta(tuple)) else {
            return false;
        };
        if m.gen_ts > self.tau {
            return false;
        }
        if m.gen_ts == self.tau {
            match (self.id_of)(pred, tuple) {
                Some(id) if id <= self.update_id => {}
                _ => return false,
            }
        }
        if let Some(w) = self.prog.windows.get(&pred).copied() {
            if m.gen_ts + w <= self.tau {
                return false;
            }
        }
        match m.del_ts {
            Some(d) => d >= self.tau,
            None => true,
        }
    }

    fn visible(&self, pred: Symbol, tuple: &Tuple) -> bool {
        self.participates(pred, tuple)
    }

    fn visible_tuples(&self, pred: Symbol) -> Vec<Tuple> {
        match self.db.relation(pred) {
            Some(r) => r
                .tuples()
                .filter(|t| self.generous || self.participates(pred, t))
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }
}

/// Process one rule's partial set at one node: evaluate newly-bound checks,
/// apply local negation kills, extend with local fragments (all subsets,
/// ascending literal index within the node). Returns the surviving set —
/// originals plus extensions.
///
/// `pinned` is the probe's pinned literal (its negation check is skipped
/// per the `T_s1` construction); `restrict` limits extension to a single
/// literal (multiple-pass mode).
pub fn process_partials(
    ctx: &LocalCtx<'_>,
    rule: &Rule,
    shape: &RuleShape,
    partials: Vec<Partial>,
    pinned: Option<usize>,
    restrict: Option<usize>,
) -> Vec<Partial> {
    let mut out: Vec<Partial> = Vec::new();
    for p in partials {
        grow(ctx, rule, shape, p, pinned, restrict, 0, &mut out);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn grow(
    ctx: &LocalCtx<'_>,
    rule: &Rule,
    shape: &RuleShape,
    mut p: Partial,
    pinned: Option<usize>,
    restrict: Option<usize>,
    min_lit: usize,
    out: &mut Vec<Partial>,
) {
    // 1. Evaluate any newly-evaluable checks; kill on failure or error.
    let subst = p.subst();
    for &i in &shape.checks {
        if p.bound[i] {
            continue;
        }
        match &rule.body[i] {
            Literal::Cmp(op, l, r) => {
                let lg = subst.apply(l);
                let rg = subst.apply(r);
                if lg.is_ground() && rg.is_ground() {
                    match ctx.prog.reg.compare(*op, &lg, &rg) {
                        Ok(true) => p.bound[i] = true,
                        _ => return, // failed or errored: kill
                    }
                } // else: not yet evaluable
            }
            Literal::Builtin(atom) => {
                let args: Option<Vec<Term>> = atom
                    .args
                    .iter()
                    .map(|a| {
                        let g = subst.apply(a);
                        if g.is_ground() {
                            ctx.prog.reg.eval_term(&g).ok()
                        } else {
                            None
                        }
                    })
                    .collect();
                if let Some(args) = args {
                    match ctx.prog.reg.call_pred(atom.pred, &args) {
                        Ok(true) => p.bound[i] = true,
                        _ => return,
                    }
                }
            }
            _ => unreachable!("checks contains only Cmp/Builtin"),
        }
    }

    // 2. Local negation kills: a bound negated subgoal matching a visible
    // local fragment kills the result.
    for &i in &shape.negations {
        if Some(i) == pinned {
            continue;
        }
        if let Literal::Neg(atom) = &rule.body[i] {
            let ground: Option<Vec<Term>> = atom
                .args
                .iter()
                .map(|a| {
                    let g = subst.apply(a);
                    if g.is_ground() {
                        ctx.prog.reg.eval_term(&g).ok()
                    } else {
                        None
                    }
                })
                .collect();
            if let Some(args) = ground {
                if ctx.visible(atom.pred, &Tuple::new(args)) {
                    return; // killed
                }
            }
        }
    }

    out.push(p.clone());

    // 3. Extend with local fragments (ascending literal order within this
    // node avoids generating the same combination twice).
    for &i in &shape.positives {
        if i < min_lit || p.bound[i] {
            continue;
        }
        if let Some(r) = restrict {
            if i != r {
                continue;
            }
        }
        if let Literal::Pos(atom) = &rule.body[i] {
            for t in ctx.visible_tuples(atom.pred) {
                let mut s = p.subst();
                let terms = intern::boundary(|| t.terms());
                if sem_match_args(&ctx.prog.reg, &atom.args, &terms, &mut s) {
                    // A visible fragment without an id means its id record
                    // raced an expiry: skip the match rather than panic.
                    let Some(id) = (ctx.id_of)(atom.pred, &t) else {
                        continue;
                    };
                    let mut q = p.clone();
                    q.bound[i] = true;
                    q.inputs.push((i as u16, id));
                    q.absorb(&s);
                    grow(ctx, rule, shape, q, pinned, restrict, i + 1, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile_source, PlanTiming};
    use sensorlog_eval::relation::TupleMeta;
    use sensorlog_logic::builtin::BuiltinRegistry;
    use sensorlog_logic::parse_fact;
    use sensorlog_netsim::NodeId;

    fn tid(n: u32, ts: u64) -> TupleId {
        TupleId {
            node: NodeId(n),
            ts,
            seq: 0,
        }
    }

    fn fact(src: &str) -> (Symbol, Tuple) {
        let (p, args) = parse_fact(src).unwrap();
        (p, Tuple::new(args))
    }

    fn prog() -> DistProgram {
        compile_source(
            r#"
            .output q.
            q(X, Z) :- e(X, Y), f(Y, Z), Z > 0, not bad(Z).
            "#,
            BuiltinRegistry::standard(),
            PlanTiming::default(),
        )
        .unwrap()
    }

    fn ctx<'a>(
        prog: &'a DistProgram,
        db: &'a Database,
        ids: &'a dyn Fn(Symbol, &Tuple) -> Option<TupleId>,
        tau: SimTime,
    ) -> LocalCtx<'a> {
        LocalCtx {
            prog,
            db,
            id_of: ids,
            tau,
            // Tests probe with the largest possible ID so equal-timestamp
            // replicas always participate.
            update_id: TupleId {
                node: NodeId(u32::MAX),
                ts: u64::MAX,
                seq: u32::MAX,
            },
            generous: false,
        }
    }

    #[test]
    fn seed_and_extend_to_complete() {
        let prog = prog();
        let rule = &prog.analysis.program.rules[0];
        let shape = RuleShape::of(rule);
        let (ep, et) = fact("e(1, 2)");
        let seed = seed_partial(&prog, rule, 0, false, &et, tid(0, 5)).unwrap();
        assert!(!seed.is_complete(&shape));

        // A node holding f(2, 9) extends the partial to completion.
        let mut db = Database::new();
        let (fp, ft) = fact("f(2, 9)");
        db.relation_mut(fp).insert(ft.clone(), TupleMeta::at(3));
        let ids = move |p: Symbol, t: &Tuple| {
            if p == fp && *t == ft {
                Some(tid(4, 3))
            } else {
                None
            }
        };
        let c = ctx(&prog, &db, &ids, 10);
        let out = process_partials(&c, rule, &shape, vec![seed.clone()], None, None);
        // The original plus the completed extension.
        assert_eq!(out.len(), 2);
        let complete: Vec<_> = out.iter().filter(|p| p.is_complete(&shape)).collect();
        assert_eq!(complete.len(), 1);
        assert_eq!(complete[0].inputs.len(), 2);
        let _ = ep;
    }

    #[test]
    fn check_kills_partial() {
        let prog = prog();
        let rule = &prog.analysis.program.rules[0];
        let shape = RuleShape::of(rule);
        let (_, et) = fact("e(1, 2)");
        let seed = seed_partial(&prog, rule, 0, false, &et, tid(0, 5)).unwrap();
        // f(2, -3) binds Z = -3, failing Z > 0: the extension dies, the
        // original survives.
        let mut db = Database::new();
        let (fp, ft) = fact("f(2, -3)");
        db.relation_mut(fp).insert(ft.clone(), TupleMeta::at(3));
        let ids = move |p: Symbol, t: &Tuple| (p == fp && *t == ft).then(|| tid(4, 3));
        let c = ctx(&prog, &db, &ids, 10);
        let out = process_partials(&c, rule, &shape, vec![seed], None, None);
        assert_eq!(out.len(), 1);
        assert!(!out[0].is_complete(&shape));
    }

    #[test]
    fn negation_kills_at_any_node() {
        let prog = prog();
        let rule = &prog.analysis.program.rules[0];
        let shape = RuleShape::of(rule);
        let (_, et) = fact("e(1, 2)");
        let seed = seed_partial(&prog, rule, 0, false, &et, tid(0, 5)).unwrap();
        let mut db = Database::new();
        let (fp, ft) = fact("f(2, 9)");
        let (bp, bt) = fact("bad(9)");
        db.relation_mut(fp).insert(ft.clone(), TupleMeta::at(3));
        db.relation_mut(bp).insert(bt, TupleMeta::at(2));
        let ids = move |p: Symbol, t: &Tuple| (p == fp && *t == ft).then(|| tid(4, 3));
        let c = ctx(&prog, &db, &ids, 10);
        let out = process_partials(&c, rule, &shape, vec![seed], None, None);
        // The completed extension (Z = 9) is killed by bad(9); only the
        // incomplete original survives.
        assert_eq!(out.len(), 1);
        assert!(!out[0].is_complete(&shape));
    }

    #[test]
    fn visibility_respected() {
        let prog = prog();
        let rule = &prog.analysis.program.rules[0];
        let shape = RuleShape::of(rule);
        let (_, et) = fact("e(1, 2)");
        let seed = seed_partial(&prog, rule, 0, false, &et, tid(0, 5)).unwrap();
        // Fragment generated *after* the probe's tau is invisible.
        let mut db = Database::new();
        let (fp, ft) = fact("f(2, 9)");
        db.relation_mut(fp).insert(ft.clone(), TupleMeta::at(50));
        let ids = move |p: Symbol, t: &Tuple| (p == fp && *t == ft).then(|| tid(4, 50));
        let c = ctx(&prog, &db, &ids, 10);
        let out = process_partials(&c, rule, &shape, vec![seed], None, None);
        assert_eq!(out.len(), 1); // no extension
    }

    #[test]
    fn pinned_negation_seeds_without_input() {
        let prog = prog();
        let rule = &prog.analysis.program.rules[0];
        let (_, bt) = fact("bad(9)");
        let seed = seed_partial(&prog, rule, 3, true, &bt, tid(7, 8)).unwrap();
        assert!(seed.inputs.is_empty());
        assert!(seed.bound[3]);
        // Z is bound to 9 by the pin.
        assert!(seed
            .bindings
            .iter()
            .any(|(v, t)| v.as_str() == "Z" && *t == Term::Int(9)));
    }

    #[test]
    fn restrict_limits_extension() {
        let prog = prog();
        let rule = &prog.analysis.program.rules[0];
        let shape = RuleShape::of(rule);
        let (_, et) = fact("e(1, 2)");
        let seed = seed_partial(&prog, rule, 0, false, &et, tid(0, 5)).unwrap();
        let mut db = Database::new();
        let (fp, ft) = fact("f(2, 9)");
        db.relation_mut(fp).insert(ft.clone(), TupleMeta::at(3));
        let ids = move |p: Symbol, t: &Tuple| (p == fp && *t == ft).then(|| tid(4, 3));
        let c = ctx(&prog, &db, &ids, 10);
        // Restricting to literal 0 (already bound) blocks the f-extension.
        let out = process_partials(&c, rule, &shape, vec![seed], None, Some(0));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn self_join_subsets_within_node() {
        // r(X, Z) :- e(X, Y), e(Y, Z): one node holding e(2,3) and e(3,4)
        // must produce all subset partials from a pin on e(1,2).
        let prog = compile_source(
            "r(X, Z) :- s(X, Y), t(Y, Z).",
            BuiltinRegistry::standard(),
            PlanTiming::default(),
        )
        .unwrap();
        let rule = &prog.analysis.program.rules[0];
        let shape = RuleShape::of(rule);
        let (_, st) = fact("s(1, 2)");
        let seed = seed_partial(&prog, rule, 0, false, &st, tid(0, 5)).unwrap();
        let mut db = Database::new();
        let (tp, t1) = fact("t(2, 7)");
        let (_, t2) = fact("t(2, 8)");
        db.relation_mut(tp).insert(t1, TupleMeta::at(1));
        db.relation_mut(tp).insert(t2, TupleMeta::at(1));
        let ids = move |_p: Symbol, _t: &Tuple| Some(tid(9, 1));
        let c = ctx(&prog, &db, &ids, 10);
        let out = process_partials(&c, rule, &shape, vec![seed], None, None);
        // original + two completions
        assert_eq!(out.len(), 3);
        assert_eq!(out.iter().filter(|p| p.is_complete(&shape)).count(), 2);
    }
}
