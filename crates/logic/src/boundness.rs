//! Shared boundness analysis: which variables are bound where.
//!
//! Three consumers historically replayed the same reasoning independently:
//!
//! * [`crate::safety`] — is every head/negated/comparison variable bound by
//!   a positive relational subgoal (plus equality assignments)?
//! * `eval::eval_body::order_body` — greedy literal-ordering that prefers
//!   fully-bound checks and positive subgoals sharing a bound variable;
//! * `eval::planner` — replaying that order statically to derive per-literal
//!   bound-column index signatures.
//!
//! This module is now the single source of truth; the callers above are thin
//! wrappers. The invariant tying them together: for a *safe* rule, the
//! dynamic ground-column set computed per substitution during evaluation is
//! exactly the static bound set derived here (matching a positive atom binds
//! all of its variables; seeds and pins bind theirs).

use crate::ast::{CmpOp, Literal, Rule};
use crate::symbol::Symbol;
use crate::term::Term;
use crate::unify::Subst;
use std::collections::BTreeSet;

/// Evaluation order of body literals: the pinned literal (if any) first,
/// then greedily — fully-bound checks and assignments as early as possible,
/// positive subgoals preferring those with at least one bound argument.
/// Mirrors the static boundness reasoning of the safety check, so safe rules
/// always order successfully.
pub fn order_literals(body: &[Literal], pinned: Option<usize>) -> Vec<usize> {
    let n = body.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: Vec<Symbol> = Vec::new();

    let bind_lit = |lit: &Literal, bound: &mut Vec<Symbol>| {
        if let Literal::Pos(a) = lit {
            a.collect_vars(bound);
        }
    };

    if let Some(p) = pinned {
        used[p] = true;
        order.push(p);
        // A pinned literal (positive or negated) binds its variables.
        if let Some(a) = body[p].atom() {
            a.collect_vars(&mut bound);
        }
    }

    while order.len() < n {
        let is_bound = |t: &Term, bound: &[Symbol]| t.vars().iter().all(|v| bound.contains(v));
        let mut pick: Option<usize> = None;
        // 1. fully bound non-positive literal (cheap filter)
        for i in 0..n {
            if used[i] {
                continue;
            }
            match &body[i] {
                Literal::Neg(a) | Literal::Builtin(a)
                    if a.args.iter().all(|t| is_bound(t, &bound)) =>
                {
                    pick = Some(i);
                    break;
                }
                Literal::Cmp(_, l, r) if is_bound(l, &bound) && is_bound(r, &bound) => {
                    pick = Some(i);
                    break;
                }
                _ => {}
            }
        }
        // 2. assignment: Eq with exactly one side a bindable variable
        if pick.is_none() {
            for i in 0..n {
                if used[i] {
                    continue;
                }
                if let Literal::Cmp(CmpOp::Eq, l, r) = &body[i] {
                    let lb = is_bound(l, &bound);
                    let rb = is_bound(r, &bound);
                    if (lb && matches!(r, Term::Var(_))) || (rb && matches!(l, Term::Var(_))) {
                        pick = Some(i);
                        break;
                    }
                }
            }
        }
        // 3. positive subgoal sharing a bound variable
        if pick.is_none() {
            for i in 0..n {
                if used[i] {
                    continue;
                }
                if let Literal::Pos(a) = &body[i] {
                    if a.vars().iter().any(|v| bound.contains(v)) {
                        pick = Some(i);
                        break;
                    }
                }
            }
        }
        // 4. any positive subgoal
        if pick.is_none() {
            for i in 0..n {
                if used[i] {
                    continue;
                }
                if matches!(body[i], Literal::Pos(_)) {
                    pick = Some(i);
                    break;
                }
            }
        }
        // 5. anything left (unsafe rules only — evaluation will error)
        if pick.is_none() {
            pick = (0..n).find(|&i| !used[i]);
        }
        let i = pick.expect("order_literals: no literal left");
        used[i] = true;
        order.push(i);
        bind_lit(&body[i], &mut bound);
        // Assignments bind their variable side.
        if let Literal::Cmp(CmpOp::Eq, l, r) = &body[i] {
            if let Term::Var(v) = l {
                if !bound.contains(v) {
                    bound.push(*v);
                }
            }
            if let Term::Var(v) = r {
                if !bound.contains(v) {
                    bound.push(*v);
                }
            }
        }
    }
    order
}

/// Argument positions of `args` whose variables are all in `bound`
/// (constants qualify vacuously), sorted ascending.
pub fn bound_cols(args: &[Term], bound: &[Symbol]) -> Vec<usize> {
    args.iter()
        .enumerate()
        .filter(|(_, t)| t.vars().iter().all(|v| bound.contains(v)))
        .map(|(i, _)| i)
        .collect()
}

/// Per-literal probe signatures for one evaluation order. `plan[i]` is the
/// sorted bound-column set literal `i` probes with; empty means full scan
/// (or a literal that is never probed: pinned, negated, comparison,
/// builtin).
pub fn probe_plan(
    body: &[Literal],
    order: &[usize],
    pinned: Option<usize>,
    seed: &Subst,
) -> Vec<Vec<usize>> {
    let mut bound: Vec<Symbol> = seed.iter().map(|(v, _)| *v).collect();
    let mut plan: Vec<Vec<usize>> = vec![Vec::new(); body.len()];
    for &idx in order {
        let is_pinned = pinned == Some(idx);
        match &body[idx] {
            Literal::Pos(a) => {
                if !is_pinned {
                    plan[idx] = bound_cols(&a.args, &bound);
                }
                a.collect_vars(&mut bound);
            }
            Literal::Neg(a) => {
                // Negated literals check one exact tuple (no index probe),
                // but a *pinned* negated literal matches positively and
                // binds its variables — mirror order_literals.
                if is_pinned {
                    a.collect_vars(&mut bound);
                }
            }
            Literal::Cmp(CmpOp::Eq, l, r) => {
                // Assignments bind their variable side (order_literals).
                for t in [l, r] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            bound.push(*v);
                        }
                    }
                }
            }
            Literal::Cmp(..) | Literal::Builtin(_) => {}
        }
    }
    plan
}

/// Variables bound by the positive relational subgoals plus equality
/// assignments, computed to fixpoint. This is the safety check's notion of
/// boundness (order-independent, unlike [`order_literals`]'s greedy pass,
/// but they agree on safe rules).
pub fn rule_bound_vars(rule: &Rule) -> BTreeSet<Symbol> {
    let mut bound: BTreeSet<Symbol> = BTreeSet::new();
    for atom in rule.positive_atoms() {
        let mut vs = Vec::new();
        atom.collect_vars(&mut vs);
        bound.extend(vs);
    }
    // Equality assignments may cascade, so iterate to fixpoint.
    loop {
        let mut changed = false;
        for lit in &rule.body {
            if let Literal::Cmp(CmpOp::Eq, l, r) = lit {
                let l_vars = l.vars();
                let r_vars = r.vars();
                let l_bound = l_vars.iter().all(|v| bound.contains(v));
                let r_bound = r_vars.iter().all(|v| bound.contains(v));
                if r_bound && !l_bound {
                    if let Term::Var(v) = l {
                        changed |= bound.insert(*v);
                    }
                }
                if l_bound && !r_bound {
                    if let Term::Var(v) = r {
                        changed |= bound.insert(*v);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    bound
}

/// The boundness **signature** of a rule under one pin: the evaluation order
/// plus the per-literal probe columns. This is the exact object the planner
/// registers indexes from and the `check` lints inspect, exposed as one
/// struct so regression tests can assert the two consumers agree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RuleSignature {
    pub pinned: Option<usize>,
    pub order: Vec<usize>,
    pub plan: Vec<Vec<usize>>,
}

/// Signatures of a rule for the unpinned order plus one pinned variant per
/// relational (positive or negated) literal — the set of orders the
/// semi-naive and incremental engines actually evaluate.
pub fn rule_signatures(rule: &Rule) -> Vec<RuleSignature> {
    let seed = Subst::new();
    let mut pins: Vec<Option<usize>> = vec![None];
    for (i, lit) in rule.body.iter().enumerate() {
        if matches!(lit, Literal::Pos(_) | Literal::Neg(_)) {
            pins.push(Some(i));
        }
    }
    pins.into_iter()
        .map(|pinned| {
            let order = order_literals(&rule.body, pinned);
            let plan = probe_plan(&rule.body, &order, pinned, &seed);
            RuleSignature {
                pinned,
                order,
                plan,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    #[test]
    fn order_prefers_bound_joins() {
        let r = parse_rule("q(X, Z) :- e(X, Y), e(Y, Z).").unwrap();
        let order = order_literals(&r.body, None);
        assert_eq!(order, vec![0, 1]);
        let plan = probe_plan(&r.body, &order, None, &Subst::new());
        assert_eq!(plan[0], Vec::<usize>::new());
        assert_eq!(plan[1], vec![0]);
    }

    #[test]
    fn pinned_binds_without_probing() {
        let r = parse_rule("q(X, Z) :- e(X, Y), e(Y, Z).").unwrap();
        let order = order_literals(&r.body, Some(1));
        assert_eq!(order[0], 1);
        let plan = probe_plan(&r.body, &order, Some(1), &Subst::new());
        assert!(plan[1].is_empty());
        assert_eq!(plan[0], vec![1]);
    }

    #[test]
    fn bound_vars_fixpoint_cascades() {
        let r = parse_rule("q(U) :- p(X), U == T * 2, T == X + 1.").unwrap();
        let b = rule_bound_vars(&r);
        for v in ["X", "T", "U"] {
            assert!(b.contains(&Symbol::intern(v)), "{v} should be bound");
        }
    }

    #[test]
    fn signatures_enumerate_pins() {
        let r = parse_rule("t(X, Y) :- t(X, Z), e(Z, Y).").unwrap();
        let sigs = rule_signatures(&r);
        assert_eq!(sigs.len(), 3); // unpinned + pin 0 + pin 1
        assert_eq!(sigs[0].pinned, None);
        assert_eq!(sigs[1].pinned, Some(0));
        assert_eq!(sigs[2].pinned, Some(1));
    }
}
