//! Predicate dependency graph and strongly-connected components.
//!
//! "In the dependency graph, an edge exists from a predicate P to a
//! predicate Q if there is a rule with head P whose body contains Q"
//! (footnote 5). Edges carry polarity; an aggregate head makes every body
//! dependency behave like a negative edge (the body must be complete before
//! the aggregate is taken).

use crate::ast::{Literal, Program};
use crate::span::Span;
use crate::symbol::Symbol;
use std::collections::{BTreeMap, BTreeSet};

/// Edge polarity.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Polarity {
    Positive,
    /// Negated subgoal, or any subgoal of a rule with a head aggregate.
    Negative,
}

/// Dependency graph over predicates.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    /// head → [(body pred, polarity, rule id)]
    pub edges: BTreeMap<Symbol, Vec<(Symbol, Polarity, usize)>>,
    pub preds: BTreeSet<Symbol>,
    /// Source span per rule id, so cycle/stratification errors can point at
    /// the offending rule without holding the program.
    pub rule_spans: BTreeMap<usize, Span>,
}

impl DepGraph {
    /// Build the dependency graph of a program.
    pub fn build(prog: &Program) -> DepGraph {
        let mut g = DepGraph {
            preds: prog.all_preds(),
            ..DepGraph::default()
        };
        for rule in &prog.rules {
            let head = rule.head.pred;
            g.rule_spans.insert(rule.id, rule.spans.rule);
            g.edges.entry(head).or_default();
            for lit in &rule.body {
                let (pred, pol) = match lit {
                    Literal::Pos(a) => (a.pred, Polarity::Positive),
                    Literal::Neg(a) => (a.pred, Polarity::Negative),
                    _ => continue,
                };
                let pol = if rule.agg.is_some() {
                    Polarity::Negative
                } else {
                    pol
                };
                g.edges.entry(head).or_default().push((pred, pol, rule.id));
            }
        }
        g
    }

    /// Successors of `p` (its body predicates across all rules).
    pub fn succ(&self, p: Symbol) -> impl Iterator<Item = &(Symbol, Polarity, usize)> {
        self.edges.get(&p).into_iter().flatten()
    }

    /// Strongly-connected components in *reverse topological order*
    /// (callees before callers), via iterative Tarjan.
    pub fn sccs(&self) -> Vec<Vec<Symbol>> {
        let nodes: Vec<Symbol> = self.preds.iter().copied().collect();
        let index_of: BTreeMap<Symbol, usize> =
            nodes.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let n = nodes.len();
        let adj: Vec<Vec<usize>> = nodes
            .iter()
            .map(|&p| {
                self.succ(p)
                    .filter_map(|(q, _, _)| index_of.get(q).copied())
                    .collect()
            })
            .collect();

        // Iterative Tarjan.
        const UNSET: usize = usize::MAX;
        let mut index = vec![UNSET; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<Symbol>> = Vec::new();

        // Work stack frames: (node, child cursor).
        for start in 0..n {
            if index[start] != UNSET {
                continue;
            }
            let mut work: Vec<(usize, usize)> = vec![(start, 0)];
            while !work.is_empty() {
                let (v, cursor) = *work.last().expect("nonempty");
                if cursor == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if cursor < adj[v].len() {
                    work.last_mut().expect("nonempty").1 += 1;
                    let w = adj[v][cursor];
                    if index[w] == UNSET {
                        work.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(nodes[w]);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// True if `p` is (transitively) recursive: it belongs to an SCC with
    /// more than one predicate, or has a self-loop.
    pub fn is_recursive(&self, p: Symbol) -> bool {
        for scc in self.sccs() {
            if scc.contains(&p) {
                if scc.len() > 1 {
                    return true;
                }
                return self.succ(p).any(|(q, _, _)| *q == p);
            }
        }
        false
    }

    /// Negative edges internal to the given SCC: `(head, body, rule id)`.
    pub fn internal_negative_edges(&self, scc: &[Symbol]) -> Vec<(Symbol, Symbol, usize)> {
        let set: BTreeSet<Symbol> = scc.iter().copied().collect();
        let mut out = Vec::new();
        for &p in scc {
            for (q, pol, rid) in self.succ(p) {
                if *pol == Polarity::Negative && set.contains(q) {
                    out.push((p, *q, *rid));
                }
            }
        }
        out
    }

    /// Predicates transitively reachable from `roots` (inclusive).
    pub fn reachable_from(&self, roots: &[Symbol]) -> BTreeSet<Symbol> {
        let mut seen: BTreeSet<Symbol> = roots.iter().copied().collect();
        let mut frontier: Vec<Symbol> = roots.to_vec();
        while let Some(p) = frontier.pop() {
            for (q, _, _) in self.succ(p) {
                if seen.insert(*q) {
                    frontier.push(*q);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn builds_edges_with_polarity() {
        let p = parse_program(
            r#"
            q(X) :- a(X), not b(X).
            "#,
        )
        .unwrap();
        let g = DepGraph::build(&p);
        let edges = &g.edges[&sym("q")];
        assert!(edges.contains(&(sym("a"), Polarity::Positive, 0)));
        assert!(edges.contains(&(sym("b"), Polarity::Negative, 0)));
    }

    #[test]
    fn aggregate_rules_are_negative_edges() {
        let p = parse_program("q(G, min<D>) :- path(G, D).").unwrap();
        let g = DepGraph::build(&p);
        assert_eq!(g.edges[&sym("q")][0].1, Polarity::Negative);
    }

    #[test]
    fn sccs_reverse_topological() {
        let p = parse_program(
            r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            ans(X) :- t(a, X).
            "#,
        )
        .unwrap();
        let g = DepGraph::build(&p);
        let sccs = g.sccs();
        let pos = |s: &str| {
            sccs.iter()
                .position(|c| c.contains(&sym(s)))
                .unwrap_or(usize::MAX)
        };
        // callees first: e before t before ans
        assert!(pos("e") < pos("t"));
        assert!(pos("t") < pos("ans"));
        assert!(g.is_recursive(sym("t")));
        assert!(!g.is_recursive(sym("ans")));
        assert!(!g.is_recursive(sym("e")));
    }

    #[test]
    fn mutual_recursion_in_one_scc() {
        let p = parse_program(
            r#"
            even(X) :- zero(X).
            even(X) :- succ(Y, X), odd(Y).
            odd(X) :- succ(Y, X), even(X).
            "#,
        )
        .unwrap();
        let g = DepGraph::build(&p);
        let sccs = g.sccs();
        let comp = sccs.iter().find(|c| c.contains(&sym("even"))).unwrap();
        assert!(comp.contains(&sym("odd")));
        assert!(g.is_recursive(sym("even")));
    }

    #[test]
    fn internal_negative_edges_detected() {
        let p = parse_program(
            r#"
            win(X) :- move(X, Y), not win(Y).
            "#,
        )
        .unwrap();
        let g = DepGraph::build(&p);
        let scc: Vec<Symbol> = vec![sym("win")];
        let negs = g.internal_negative_edges(&scc);
        assert_eq!(negs, vec![(sym("win"), sym("win"), 0)]);
    }

    #[test]
    fn reachability() {
        let p = parse_program(
            r#"
            a(X) :- b(X).
            b(X) :- c(X).
            d(X) :- e(X).
            "#,
        )
        .unwrap();
        let g = DepGraph::build(&p);
        let r = g.reachable_from(&[sym("a")]);
        assert!(r.contains(&sym("c")));
        assert!(!r.contains(&sym("e")));
    }
}
