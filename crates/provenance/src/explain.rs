//! One-call explanation of a deployment's derived (or missing) tuples —
//! the API behind `sensorlog explain`.

use crate::dag::{
    critical_path, render_dot, render_text, render_why_not, CriticalStep, ProofNode, ProvDag,
    WhyNot,
};
use sensorlog_core::Deployment;
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::{Program, Symbol, Tuple};
use std::fmt::Write as _;

/// The answer to "explain this tuple".
#[derive(Clone, Debug)]
pub enum Explanation {
    /// The tuple is live: its derivation tree, latency-critical chain, and
    /// ready-to-print renders.
    Proof {
        proof: ProofNode,
        critical_path: Vec<CriticalStep>,
        text: String,
        dot: String,
    },
    /// The tuple is absent: the why-not verdict and its render.
    Absent { why_not: WhyNot, text: String },
}

impl Explanation {
    /// The human-readable render (tree + critical path, or the why-not
    /// report).
    pub fn text(&self) -> &str {
        match self {
            Explanation::Proof { text, .. } | Explanation::Absent { text, .. } => text,
        }
    }

    /// The DOT render, if the tuple had a proof.
    pub fn dot(&self) -> Option<&str> {
        match self {
            Explanation::Proof { dot, .. } => Some(dot),
            Explanation::Absent { .. } => None,
        }
    }

    pub fn is_proof(&self) -> bool {
        matches!(self, Explanation::Proof { .. })
    }
}

/// Explain one atom against a materialized DAG.
pub fn explain_atom(
    dag: &ProvDag,
    program: &Program,
    reg: &BuiltinRegistry,
    pred: Symbol,
    tuple: &Tuple,
) -> Explanation {
    match dag.why(pred, tuple) {
        Some(proof) => {
            let path = critical_path(&proof);
            let mut text = render_text(&proof);
            text.push_str("\ncritical path (leaf -> result):\n");
            for step in &path {
                let how = match step.rule_id {
                    None => "edb".to_string(),
                    Some(r) => format!("rule {r}"),
                };
                let wait = if step.wait > 0 {
                    format!("  (+{} sim-ms)", step.wait)
                } else {
                    String::new()
                };
                let _ = writeln!(
                    text,
                    "  t={:<8} {}{}  [{}]{}",
                    step.finish_at, step.pred, step.tuple, how, wait
                );
            }
            let dot = render_dot(&proof);
            Explanation::Proof {
                proof,
                critical_path: path,
                text,
                dot,
            }
        }
        None => {
            let why_not = dag.why_not(program, reg, pred, tuple);
            let text = render_why_not(pred, tuple, &why_not);
            Explanation::Absent { why_not, text }
        }
    }
}

/// Provenance queries on a finished deployment run.
pub trait Explain {
    /// Materialize the provenance DAG from the run's records.
    fn prov_dag(&self) -> ProvDag;

    /// Explain one atom: a derivation tree with latency attribution when it
    /// is live, a why-not verdict when it is absent.
    fn explain(&self, pred: Symbol, tuple: &Tuple) -> Explanation;
}

impl Explain for Deployment {
    fn prov_dag(&self) -> ProvDag {
        ProvDag::build(&self.provenance_records())
    }

    fn explain(&self, pred: Symbol, tuple: &Tuple) -> Explanation {
        explain_atom(
            &self.prov_dag(),
            &self.prog.analysis.program,
            &self.prog.reg,
            pred,
            tuple,
        )
    }
}
