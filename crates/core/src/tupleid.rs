//! Tuple identity (Definition 2).
//!
//! "We use (I, τ) as the ID of a tuple t, where I is its source node and τ
//! is its generation-timestamp (local time at I when t was generated)." A
//! sequence number disambiguates multiple generations within one local
//! millisecond.

use sensorlog_eval::UpdateKind;
use sensorlog_logic::{Symbol, Tuple};
use sensorlog_netsim::{NodeId, SimTime};
use std::fmt;

/// Unique tuple identifier: source node + generation timestamp + sequence.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TupleId {
    pub node: NodeId,
    pub ts: SimTime,
    pub seq: u32,
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}#{}", self.node, self.ts, self.seq)
    }
}

/// An update traveling through the network: the paper's storage-phase and
/// join-phase payload. For deletions, `id` is the *original* insertion's
/// tuple ID (derivations are keyed by it) and `tau` the deletion event's
/// local timestamp.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FactRecord {
    pub pred: Symbol,
    pub tuple: Tuple,
    pub id: TupleId,
    pub kind: UpdateKind,
    /// Event (update) timestamp: generation ts for inserts, deletion ts for
    /// deletes.
    pub tau: SimTime,
}

impl FactRecord {
    pub fn insert(pred: Symbol, tuple: Tuple, id: TupleId) -> FactRecord {
        FactRecord {
            pred,
            tuple,
            id,
            kind: UpdateKind::Insert,
            tau: id.ts,
        }
    }

    pub fn delete(pred: Symbol, tuple: Tuple, id: TupleId, tau: SimTime) -> FactRecord {
        FactRecord {
            pred,
            tuple,
            id,
            kind: UpdateKind::Delete,
            tau,
        }
    }

    /// Approximate wire size: tuple bytes + id + header.
    pub fn byte_size(&self) -> usize {
        self.tuple.byte_size() + 16 + 2 + self.pred.as_str().len()
    }
}

/// Derivation identity as shipped to owner nodes: the rule plus the
/// participating tuple IDs keyed by body literal index ("a derivation of a
/// derived tuple t is the list of the tuple-IDs that join to yield t, one
/// from each of the data streams corresponding to the non-negated subgoals
/// … we also include the ID of the rule", Definition 2).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DerivationKey {
    pub rule_id: usize,
    pub inputs: Vec<(u16, TupleId)>,
}

impl DerivationKey {
    /// Canonicalize (sort by literal index) so identity is independent of
    /// the order in which the join bound the subgoals.
    pub fn new(rule_id: usize, mut inputs: Vec<(u16, TupleId)>) -> DerivationKey {
        inputs.sort();
        DerivationKey { rule_id, inputs }
    }

    pub fn byte_size(&self) -> usize {
        4 + self.inputs.len() * 18
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::Term;

    #[test]
    fn ids_order_by_node_time_seq() {
        let a = TupleId {
            node: NodeId(1),
            ts: 5,
            seq: 0,
        };
        let b = TupleId {
            node: NodeId(1),
            ts: 5,
            seq: 1,
        };
        assert!(a < b);
        assert_eq!(a.to_string(), "n1@5#0");
    }

    #[test]
    fn derivation_key_canonical() {
        let id1 = TupleId {
            node: NodeId(0),
            ts: 1,
            seq: 0,
        };
        let id2 = TupleId {
            node: NodeId(2),
            ts: 3,
            seq: 0,
        };
        let a = DerivationKey::new(7, vec![(1, id2), (0, id1)]);
        let b = DerivationKey::new(7, vec![(0, id1), (1, id2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn fact_record_roundtrip() {
        let id = TupleId {
            node: NodeId(3),
            ts: 42,
            seq: 1,
        };
        let t = Tuple::new(vec![Term::Int(1), Term::str("enemy")]);
        let ins = FactRecord::insert(Symbol::intern("veh"), t.clone(), id);
        assert_eq!(ins.tau, 42);
        assert_eq!(ins.kind, UpdateKind::Insert);
        let del = FactRecord::delete(Symbol::intern("veh"), t, id, 99);
        assert_eq!(del.tau, 99);
        assert_eq!(del.id, id);
        assert!(del.byte_size() > 16);
    }
}
