//! End-to-end Criterion benchmarks: one full distributed update round per
//! GPA strategy on a small grid, the flood baseline, and a TAG epoch.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sensorlog_core::deploy::{DeployConfig, Deployment, WorkloadEvent};
use sensorlog_core::{RtConfig, Strategy};
use sensorlog_eval::UpdateKind;
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::{Symbol, Term, Tuple};
use sensorlog_netsim::{NodeId, SimConfig, Topology};
use sensorlog_netstack::flood::run_flood;
use sensorlog_netstack::tag::run_epoch;
use sensorlog_netstack::tree::GatherTree;

const JOIN2: &str = r#"
    .output q.
    q(X, Y) :- r1(X, T), r2(Y, T).
"#;

fn one_round(strategy: Strategy) -> u64 {
    let topo = Topology::square_grid(6);
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy,
            ..RtConfig::default()
        },
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(JOIN2, BuiltinRegistry::standard(), topo, cfg).unwrap();
    let mk = |v: i64, t: i64| Tuple::new(vec![Term::Int(v), Term::Int(t)]);
    d.schedule_all(vec![
        WorkloadEvent {
            at: 10,
            node: NodeId(3),
            pred: Symbol::intern("r1"),
            tuple: mk(1, 7),
            kind: UpdateKind::Insert,
        },
        WorkloadEvent {
            at: 200,
            node: NodeId(30),
            pred: Symbol::intern("r2"),
            tuple: mk(2, 7),
            kind: UpdateKind::Insert,
        },
    ]);
    d.run(10_000_000);
    d.metrics().total_tx()
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("one-update-round 6x6");
    for strategy in [
        Strategy::Perpendicular { band_width: 1.0 },
        Strategy::NaiveBroadcast,
        Strategy::LocalStorage,
        Strategy::Centroid,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, &s| b.iter(|| black_box(one_round(s))),
        );
    }
    group.finish();
}

fn bench_flood(c: &mut Criterion) {
    c.bench_function("flood baseline 8x8", |b| {
        b.iter(|| {
            black_box(
                run_flood(&Topology::square_grid(8), NodeId(0), SimConfig::default())
                    .total_messages,
            )
        })
    });
}

fn bench_tag(c: &mut Criterion) {
    let topo = Topology::square_grid(8);
    let tree = GatherTree::bfs(&topo, NodeId(0));
    let readings: Vec<f64> = (0..64).map(|i| i as f64).collect();
    c.bench_function("tag epoch 8x8", |b| {
        b.iter(|| {
            let (p, msgs) = run_epoch(&topo, &tree, &readings, SimConfig::default());
            black_box((p.sum, msgs))
        })
    });
}

criterion_group!(benches, bench_strategies, bench_flood, bench_tag);
criterion_main!(benches);
