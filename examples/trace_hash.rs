//! Pre/post-PR trace-stability probe: a lossy 200-node logicH run whose
//! journal hash must stay byte-identical across observability changes.

use sensorlog::core::deploy::{DeployConfig, Deployment};
use sensorlog::core::strategy::Strategy;
use sensorlog::core::workload::graph_edges;
use sensorlog::prelude::*;
use std::time::Instant;

const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

fn main() {
    let topo = Topology::grid(20, 10); // 200 nodes
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig {
            loss_prob: 0.1,
            seed: 17,
            ..SimConfig::default()
        },
        ..DeployConfig::default()
    };
    let t0 = Instant::now();
    let mut d = Deployment::new(LOGIC_H, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    let journal = d.attach_journal();
    d.schedule_all(graph_edges(&topo, 100, 200));
    d.run(2_000_000);
    let j = journal.take();
    println!(
        "records={} hash={:016x} tx={} wall={:.2}s",
        j.records.len(),
        j.content_hash(),
        d.metrics().total_tx(),
        t0.elapsed().as_secs_f64()
    );
}
