//! Regenerate the paper's evaluation tables/figures.
//!
//! ```text
//! figures all            # everything, report order
//! figures fig4 fig8      # a subset
//! figures --list         # available ids
//! ```

use sensorlog_bench::{run, ALL_EXPERIMENTS};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        let t0 = Instant::now();
        for table in run(&[id]) {
            println!("{table}");
        }
        eprintln!("[{id} took {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
