//! Global constant pool: hash-consed ground values behind dense `u32` ids.
//!
//! Every ground constant the engines touch — integers, floats, strings,
//! atoms, and ground applications — is interned exactly once into a
//! process-wide [`ConstPool`] and referred to by a [`ConstId`] everywhere on
//! the evaluation hot path. Id equality is structural equality, so join
//! probes, substitution bindings and tuple comparisons reduce to `u32`
//! operations; the boxed [`Term`] representation survives only at the
//! parser / builtin / display boundary behind explicit [`resolve`] calls.
//!
//! **Determinism.** Id assignment is first-touch order, which is
//! deterministic for a deterministic workload — but nothing observable
//! depends on it: every ordered structure (relation iteration, journal
//! content) orders by each entry's [`Entry::sort_key`], a byte encoding of
//! the *value* that reproduces the boxed `Term` ordering exactly. Two runs
//! that intern the same values in different orders therefore produce
//! byte-identical traces.
//!
//! **Sort keys.** `sort_key(a) < sort_key(b)` (memcmp) iff
//! `resolve(a) < resolve(b)` under `Term`'s derived `Ord` (variant order
//! `Int < Float < Str < Atom < App`, symbols by string content). Keys are
//! also what the relation byte-tries are built from, so one trie per column
//! priority serves every bound-column prefix signature while enumerating in
//! canonical tuple order. The encoding:
//!
//! * `Int`  — tag `1`, then an order-preserving varint: a length byte with
//!   the sign folded in (`0x80 + k` for non-negative values spanning `k`
//!   minimal big-endian bytes, `0x7F - k` for negatives spanning `k`
//!   minimal two's-complement bytes), then the `k` payload bytes. Small
//!   magnitudes take 2–3 bytes total, which keeps relation tries shallow;
//! * `Float`— tag `2`, then the total-order bits of [`F64`] big-endian;
//! * `Str`  — tag `3`, then the bytes with `0x00` escaped to `0x00 0xFF`,
//!   then an unescaped `0x00` terminator;
//! * `Atom` — tag `4`, same string encoding;
//! * `App`  — tag `6`, the escaped function name + `0x00`, the children's
//!   keys concatenated, and a final `0x00`.
//!
//! Continuation bytes after a terminator are always tags `1..=6`, i.e.
//! strictly between `0x00` and `0xFF`, which makes the concatenation
//! order-correct and injective (see DESIGN.md "Tuple representation & trie
//! indexes" for the argument).
//!
//! **Resolve accounting.** Each id → `Term` materialization is counted,
//! split into *boundary* resolves (inside a [`boundary`] scope: parse,
//! display, wire encoding, lineage export, procedural builtins) and *hot*
//! resolves (everything else). A clean fixpoint loop performs **zero** hot
//! resolves; `ci.sh` enforces this with the `intern.boundary.resolves`
//! gauge.

use crate::symbol::Symbol;
use crate::term::{Term, F64};
use parking_lot::RwLock;
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering as AtomicOrdering};
use std::sync::OnceLock;

/// Dense handle of an interned ground value.
pub type ConstId = u32;

/// An interned ground value. `App` children are themselves interned.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Val {
    Int(i64),
    Float(F64),
    Str(Symbol),
    Atom(Symbol),
    App(Symbol, Box<[ConstId]>),
}

impl Val {
    /// Numeric view, mirroring [`Term::as_f64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Val::Int(i) => Some(*i as f64),
            Val::Float(f) => Some(f.get()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Val::Int(i) => Some(*i),
            _ => None,
        }
    }
}

/// Pool entry: the value plus cached flat metadata so the hot path never
/// rebuilds a `Term` to answer size or ordering questions.
#[derive(Debug)]
pub struct Entry {
    pub val: Val,
    /// Serialized size in bytes, identical to [`Term::byte_size`] of the
    /// resolved term (message-cost accounting must not change).
    pub byte_size: u32,
    /// Order-preserving byte encoding (see module docs).
    pub sort_key: Box<[u8]>,
}

struct Pool {
    map: HashMap<Val, ConstId>,
    len: u32,
}

// Entry pointers live in a lock-free two-level page table so the hot path
// ([`entry`], and through it every trie probe and id comparison) never
// touches the pool lock. Pages are allocated under the pool write lock and
// published with release stores; ids are handed out only after their slot
// is written.
const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;
const PAGES: usize = 16_384; // 2^26 interned constants max

struct Page([AtomicPtr<Entry>; PAGE_SIZE]);

fn page_table() -> &'static [AtomicPtr<Page>; PAGES] {
    static TABLE: OnceLock<Box<[AtomicPtr<Page>; PAGES]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        // Safety: AtomicPtr is repr(transparent) over *mut and zero-init
        // is the null pointer.
        unsafe {
            Box::from_raw(Box::into_raw(vec![0usize; PAGES].into_boxed_slice())
                as *mut [AtomicPtr<Page>; PAGES])
        }
    })
}

/// Store `e` at slot `id`, allocating the page if needed. Caller holds the
/// pool write lock (or is the pool initializer), so slot writes never race.
fn publish_entry(id: ConstId, e: &'static Entry) {
    let table = page_table();
    let pi = (id >> PAGE_BITS) as usize;
    assert!(pi < PAGES, "const pool exceeds supported size");
    let mut page = table[pi].load(AtomicOrdering::Acquire);
    if page.is_null() {
        let fresh: Box<Page> = unsafe {
            Box::from_raw(Box::into_raw(vec![0usize; PAGE_SIZE].into_boxed_slice()) as *mut Page)
        };
        page = Box::into_raw(fresh);
        table[pi].store(page, AtomicOrdering::Release);
    }
    unsafe { &(*page).0[id as usize & (PAGE_SIZE - 1)] }
        .store(e as *const Entry as *mut Entry, AtomicOrdering::Release);
}

/// Small non-negative integers are pre-seeded at pool init so stage
/// arithmetic interns without taking the lock: `intern_int(n) == n` for
/// `0 <= n < SMALL_INTS`.
const SMALL_INTS: i64 = 4096;

fn pool() -> &'static RwLock<Pool> {
    static POOL: OnceLock<RwLock<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let mut p = Pool {
            map: HashMap::new(),
            len: 0,
        };
        for n in 0..SMALL_INTS {
            let val = Val::Int(n);
            let entry: &'static Entry = Box::leak(Box::new(Entry {
                byte_size: 8,
                sort_key: int_sort_key(n),
                val: val.clone(),
            }));
            publish_entry(p.len, entry);
            p.map.insert(val, p.len);
            p.len += 1;
        }
        RwLock::new(p)
    })
}

fn int_sort_key(n: i64) -> Box<[u8]> {
    // Order-preserving varint (see module docs): the length byte carries
    // the sign, payload is minimal big-endian. memcmp order == i64 order:
    // negatives (< 0x80) sort below non-negatives (>= 0x80); within each
    // sign, longer encodings are further from zero and equal lengths
    // compare by payload (two's-complement bytes for negatives).
    let (len_byte, k) = if n >= 0 {
        let k = (8 - (n.leading_zeros() / 8) as usize).min(8);
        (0x80 + k as u8, k)
    } else {
        let bits = 65 - (!n).leading_zeros() as usize; // sign bit included
        let k = bits.div_ceil(8);
        (0x7F - k as u8, k)
    };
    let mut out = Vec::with_capacity(2 + k);
    out.push(1u8);
    out.push(len_byte);
    out.extend_from_slice(&(n as u64).to_be_bytes()[8 - k..]);
    out.into_boxed_slice()
}

fn float_sort_key(f: F64) -> Box<[u8]> {
    let mut k = Vec::with_capacity(9);
    k.push(2u8);
    k.extend_from_slice(&f.sort_bits().to_be_bytes());
    k.into_boxed_slice()
}

/// Append `s` with `0x00` escaped to `0x00 0xFF`, then a `0x00` terminator.
fn push_escaped(out: &mut Vec<u8>, s: &str) {
    for &b in s.as_bytes() {
        out.push(b);
        if b == 0 {
            out.push(0xFF);
        }
    }
    out.push(0);
}

/// Build the entry (byte size + sort key) for `val`, reading child entries
/// from the pool. Children must already be interned; no locks are held by
/// the caller.
fn build_entry(val: Val) -> Entry {
    let (byte_size, sort_key) = match &val {
        Val::Int(n) => (8, int_sort_key(*n)),
        Val::Float(f) => (8, float_sort_key(*f)),
        Val::Str(s) => {
            let mut k = Vec::with_capacity(2 + s.as_str().len());
            k.push(3u8);
            push_escaped(&mut k, s.as_str());
            (2 + s.as_str().len() as u32, k.into_boxed_slice())
        }
        Val::Atom(s) => {
            let mut k = Vec::with_capacity(2 + s.as_str().len());
            k.push(4u8);
            push_escaped(&mut k, s.as_str());
            (2 + s.as_str().len() as u32, k.into_boxed_slice())
        }
        Val::App(f, kids) => {
            let mut size = 2 + f.as_str().len() as u32;
            let mut k = Vec::with_capacity(3 + f.as_str().len());
            k.push(6u8);
            push_escaped(&mut k, f.as_str());
            for &kid in kids.iter() {
                let e = entry(kid);
                size += e.byte_size;
                k.extend_from_slice(&e.sort_key);
            }
            k.push(0);
            (size, k.into_boxed_slice())
        }
    };
    Entry {
        val,
        byte_size,
        sort_key,
    }
}

/// Intern a ground value (children of `App` must already be interned).
pub fn intern_val(val: Val) -> ConstId {
    {
        let guard = pool().read();
        if let Some(&id) = guard.map.get(&val) {
            return id;
        }
    }
    // Build the entry outside the write lock: it reads child entries.
    let entry = build_entry(val.clone());
    let mut guard = pool().write();
    if let Some(&id) = guard.map.get(&val) {
        return id;
    }
    let leaked: &'static Entry = Box::leak(Box::new(entry));
    let id = guard.len;
    publish_entry(id, leaked);
    guard.map.insert(val, id);
    guard.len += 1;
    id
}

/// Intern an integer. Lock-free for small non-negative values.
#[inline]
pub fn intern_int(n: i64) -> ConstId {
    if (0..SMALL_INTS).contains(&n) {
        return n as ConstId;
    }
    intern_val(Val::Int(n))
}

pub fn intern_float(f: F64) -> ConstId {
    intern_val(Val::Float(f))
}

pub fn intern_atom(s: Symbol) -> ConstId {
    intern_val(Val::Atom(s))
}

pub fn intern_str(s: Symbol) -> ConstId {
    intern_val(Val::Str(s))
}

pub fn intern_app(f: Symbol, kids: Vec<ConstId>) -> ConstId {
    intern_val(Val::App(f, kids.into_boxed_slice()))
}

/// Intern a ground term. Returns `None` if the term contains a variable.
pub fn intern_term(t: &Term) -> Option<ConstId> {
    Some(match t {
        Term::Int(n) => intern_int(*n),
        Term::Float(f) => intern_float(*f),
        Term::Str(s) => intern_str(*s),
        Term::Atom(s) => intern_atom(*s),
        Term::Var(_) => return None,
        Term::App(f, args) => {
            let mut kids = Vec::with_capacity(args.len());
            for a in args.iter() {
                kids.push(intern_term(a)?);
            }
            intern_app(*f, kids)
        }
    })
}

/// Flat access to an interned entry. Does **not** count as a resolve: the
/// hot path inspects entries (tags, ints, sort keys) without rebuilding
/// terms. Lock-free: two acquire loads through the page table.
#[inline]
pub fn entry(id: ConstId) -> &'static Entry {
    // Small ids can come straight off the `intern_int` fast path without
    // the pool (and its pre-seeded pages) ever being initialized.
    let _ = pool();
    let page = page_table()[(id >> PAGE_BITS) as usize].load(AtomicOrdering::Acquire);
    debug_assert!(!page.is_null(), "entry({id}) before interning");
    let e = unsafe { &(*page).0[id as usize & (PAGE_SIZE - 1)] }.load(AtomicOrdering::Acquire);
    debug_assert!(!e.is_null(), "entry({id}) before interning");
    unsafe { &*e }
}

/// Order two ids by value — exactly `resolve(a).cmp(&resolve(b))`.
#[inline]
pub fn cmp_ids(a: ConstId, b: ConstId) -> Ordering {
    if a == b {
        Ordering::Equal
    } else {
        entry(a).sort_key.cmp(&entry(b).sort_key)
    }
}

/// Number of interned constants (diagnostics).
pub fn pool_len() -> usize {
    pool().read().len as usize
}

// ---------------------------------------------------------------------------
// Resolve accounting
// ---------------------------------------------------------------------------

static HOT_RESOLVES: AtomicU64 = AtomicU64::new(0);
static BOUNDARY_RESOLVES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static BOUNDARY_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Run `f` inside a boundary scope: resolves performed within count as
/// boundary ops (parser echo, display, wire encoding, lineage export,
/// procedural builtins), not hot-path leaks. Nestable.
pub fn boundary<T>(f: impl FnOnce() -> T) -> T {
    BOUNDARY_DEPTH.with(|d| d.set(d.get() + 1));
    let out = f();
    BOUNDARY_DEPTH.with(|d| d.set(d.get() - 1));
    out
}

fn note_resolve() {
    let in_boundary = BOUNDARY_DEPTH.with(|d| d.get() > 0);
    if in_boundary {
        BOUNDARY_RESOLVES.fetch_add(1, AtomicOrdering::Relaxed);
    } else {
        HOT_RESOLVES.fetch_add(1, AtomicOrdering::Relaxed);
    }
}

/// Cumulative resolve counters (process-wide), split by scope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResolveCounts {
    /// Resolves outside any [`boundary`] scope — a clean fixpoint does none.
    pub hot: u64,
    /// Resolves inside declared boundary scopes.
    pub boundary: u64,
}

pub fn resolve_counts() -> ResolveCounts {
    ResolveCounts {
        hot: HOT_RESOLVES.load(AtomicOrdering::Relaxed),
        boundary: BOUNDARY_RESOLVES.load(AtomicOrdering::Relaxed),
    }
}

fn resolve_inner(id: ConstId) -> Term {
    match &entry(id).val {
        Val::Int(n) => Term::Int(*n),
        Val::Float(f) => Term::Float(*f),
        Val::Str(s) => Term::Str(*s),
        Val::Atom(s) => Term::Atom(*s),
        Val::App(f, kids) => Term::App(
            *f,
            kids.iter()
                .map(|&k| resolve_inner(k))
                .collect::<Vec<_>>()
                .into(),
        ),
    }
}

/// Materialize the boxed [`Term`] for an id. Counted (once per call) toward
/// the resolve gauges — wrap boundary-side callers in [`boundary`].
pub fn resolve(id: ConstId) -> Term {
    note_resolve();
    resolve_inner(id)
}

/// Materialize several ids at once (one counted resolve op).
pub fn resolve_slice(ids: &[ConstId]) -> Vec<Term> {
    note_resolve();
    ids.iter().map(|&i| resolve_inner(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_structural() {
        let a = intern_term(&Term::app("loc", vec![Term::Int(1), Term::Int(2)])).unwrap();
        let b = intern_term(&Term::app("loc", vec![Term::Int(1), Term::Int(2)])).unwrap();
        assert_eq!(a, b);
        let c = intern_term(&Term::app("loc", vec![Term::Int(1), Term::Int(3)])).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn small_ints_are_identity() {
        assert_eq!(intern_int(0), 0);
        assert_eq!(intern_int(17), 17);
        assert_eq!(entry(17).val, Val::Int(17));
    }

    #[test]
    fn resolve_round_trips() {
        let terms = vec![
            Term::Int(-5),
            Term::float(2.5),
            Term::str("enemy"),
            Term::atom("cov"),
            Term::list(vec![Term::Int(1), Term::Int(2)], None),
            Term::app(
                "f",
                vec![Term::app("g", vec![Term::Int(9)]), Term::atom("x")],
            ),
        ];
        for t in terms {
            let id = intern_term(&t).unwrap();
            assert_eq!(resolve(id), t);
            assert_eq!(entry(id).byte_size as usize, t.byte_size());
        }
    }

    #[test]
    fn non_ground_terms_do_not_intern() {
        assert!(intern_term(&Term::var("X")).is_none());
        assert!(intern_term(&Term::app("f", vec![Term::var("X")])).is_none());
    }

    #[test]
    fn float_edge_cases_collapse() {
        let z = intern_term(&Term::float(0.0)).unwrap();
        let nz = intern_term(&Term::float(-0.0)).unwrap();
        assert_eq!(z, nz);
        let n1 = intern_term(&Term::float(f64::NAN)).unwrap();
        let n2 = intern_term(&Term::Float(F64::new(f64::from_bits(
            0x7ff8_0000_0000_0001,
        ))))
        .unwrap();
        assert_eq!(n1, n2, "all NaNs are one pool entry");
    }

    #[test]
    fn sort_keys_reproduce_term_order() {
        let samples = vec![
            Term::Int(i64::MIN),
            Term::Int(-1),
            Term::Int(0),
            Term::Int(1),
            Term::Int(i64::MAX),
            Term::float(-1.5),
            Term::float(0.0),
            Term::float(2.25),
            Term::float(f64::NAN),
            Term::str(""),
            Term::str("a"),
            Term::str("a\u{0}b"),
            Term::str("ab"),
            Term::atom("a"),
            Term::atom("ab"),
            Term::atom("b"),
            Term::nil(),
            Term::list(vec![Term::Int(1)], None),
            Term::list(vec![Term::Int(1), Term::Int(2)], None),
            Term::app("f", vec![]),
            Term::app("f", vec![Term::Int(1)]),
            Term::app("f", vec![Term::Int(1), Term::Int(1)]),
            Term::app("f", vec![Term::Int(2)]),
            Term::app("g", vec![Term::Int(0)]),
        ];
        for a in &samples {
            for b in &samples {
                let (ia, ib) = (intern_term(a).unwrap(), intern_term(b).unwrap());
                assert_eq!(
                    cmp_ids(ia, ib),
                    a.cmp(b),
                    "sort_key order diverges for {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn boundary_scope_classifies_resolves() {
        // Counters are process-global and other tests run concurrently, so
        // only lower bounds are exact here.
        let id = intern_term(&Term::Int(123456789)).unwrap();
        let before = resolve_counts();
        let _ = resolve(id);
        let mid = resolve_counts();
        assert!(mid.hot > before.hot);
        boundary(|| {
            let _ = resolve(id);
        });
        let after = resolve_counts();
        assert!(after.boundary > mid.boundary);
    }
}
