//! # sensorlog-netstack
//!
//! Network services layered on the simulator, used by the distributed
//! deductive engine and the baselines:
//!
//! * [`router`] — grid coordinate routing, greedy geographic routing with
//!   BFS fallback;
//! * [`ght`] — geographic hashing: derived tuples meet at their owner node
//!   (Sec. III-B);
//! * [`regions`] — PA storage/join regions: grid rows & columns, coordinate
//!   bands for general topologies, spatial-constraint truncation
//!   (Sec. III-A);
//! * [`tree`] — data-gathering spanning trees (BFS + the distributed
//!   beacon protocol);
//! * [`tag`] — TAG-style in-network aggregation (the paper's citation \[32\]);
//! * [`flood`] — the hand-written procedural shortest-path-tree protocol
//!   (the Kairos-style comparator for Example 3).

pub mod flood;
pub mod ght;
pub mod regions;
pub mod router;
pub mod tag;
pub mod tree;

pub use ght::owner_of;
pub use router::Router;
pub use tree::GatherTree;
