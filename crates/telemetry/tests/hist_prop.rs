//! Property test: merging per-node histograms is exactly the histogram of
//! the concatenated samples — the lossless-rollup guarantee the
//! network-wide exporter relies on.

use proptest::collection::vec;
use proptest::prelude::*;
use sensorlog_telemetry::Histogram;

const BOUNDS: &[u64] = &[4, 16, 64, 256, 1024];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_equals_concat(per_node in vec(vec(0u64..4096, 0..40), 0..8)) {
        let mut merged: Option<Histogram> = None;
        let mut whole = Histogram::new(BOUNDS);
        for samples in &per_node {
            let mut h = Histogram::new(BOUNDS);
            for &s in samples {
                h.observe(s);
                whole.observe(s);
            }
            match &mut merged {
                None => merged = Some(h),
                Some(m) => m.merge(&h).unwrap(),
            }
        }
        let merged = merged.unwrap_or_else(|| Histogram::new(BOUNDS));
        prop_assert_eq!(&merged, &whole);
        // Conservation inside the merged histogram itself.
        let bucketed: u64 = merged.bucket_counts().iter().sum::<u64>() + merged.overflow();
        prop_assert_eq!(bucketed, merged.count());
    }

    #[test]
    fn merge_is_order_insensitive(xs in vec(0u64..4096, 0..60), ys in vec(0u64..4096, 0..60)) {
        let mk = |samples: &[u64]| {
            let mut h = Histogram::new(BOUNDS);
            for &s in samples {
                h.observe(s);
            }
            h
        };
        let (a, b) = (mk(&xs), mk(&ys));
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }
}
