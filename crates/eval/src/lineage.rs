//! Per-firing lineage capture for the centralized engines (the provenance
//! plane's local layer).
//!
//! Every rule firing is the paper's Definition-2 derivation — a rule id plus
//! the positive-subgoal matches that joined to yield the head. The
//! [`LineageLog`] records exactly that, with a **compact interned encoding**:
//! each distinct ground atom `(pred, tuple)` is interned once to a dense
//! `u32` [`AtomId`], so a record is a handful of integers rather than cloned
//! tuples. Records are deduplicated by `(rule, head, premises)` —
//! set-of-derivations semantics, matching the distributed runtime's
//! `DerivationKey` identity — and carry a sign so retraction paths
//! (incremental deletes, DRed over-deletion) stay replayable.
//!
//! Recording is opt-in via [`crate::EvalConfig::record_lineage`] (batch
//! engine) or the per-engine `set_record_lineage` switches; when off, the
//! engines hold no log and pay a single branch per firing.

use sensorlog_logic::unify::Subst;
use sensorlog_logic::{Symbol, Term, Tuple};
use std::collections::{HashMap, HashSet};

/// Dense interned id of a ground atom `(pred, tuple)`.
pub type AtomId = u32;

/// Sentinel rule id marking an EDB (leaf) record — mirrors the distributed
/// runtime's static-fact `DerivationKey` convention.
pub const EDB_RULE: usize = usize::MAX;

/// One lineage event: a derivation gained (`sign = +1`) or lost
/// (`sign = -1`), or an EDB fact arriving/retracting (`rule_id ==`
/// [`EDB_RULE`], no premises).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineageRecord {
    pub rule_id: usize,
    /// `+1` derivation gained, `-1` derivation lost.
    pub sign: i8,
    /// Interned head atom.
    pub head: AtomId,
    /// Interned premise atoms in body-literal order (positive subgoals
    /// only — Definition 2).
    pub premises: Vec<AtomId>,
    /// Substitution witness of the firing, sorted by variable name. Empty
    /// for EDB records and for retractions replayed without a solution.
    pub subst: Vec<(Symbol, Term)>,
    /// Event timestamp: update `ts` for the incremental engines, `0` for
    /// the (timeless) batch fixpoint.
    pub tau: u64,
}

/// Append-only lineage log with an atom interner.
#[derive(Clone, Debug, Default)]
pub struct LineageLog {
    atoms: Vec<(Symbol, Tuple)>,
    index: HashMap<(Symbol, Tuple), AtomId>,
    /// Live derivations: `(rule, head, premises)` currently recorded with
    /// net positive sign. Gates duplicate `+1` records (semi-naive rounds
    /// rediscover derivations) and makes `-1` records exact.
    live: HashSet<(usize, AtomId, Vec<AtomId>)>,
    pub records: Vec<LineageRecord>,
}

impl LineageLog {
    pub fn new() -> LineageLog {
        LineageLog::default()
    }

    /// Intern a ground atom, returning its dense id.
    pub fn intern(&mut self, pred: Symbol, tuple: &Tuple) -> AtomId {
        if let Some(&id) = self.index.get(&(pred, tuple.clone())) {
            return id;
        }
        let id = self.atoms.len() as AtomId;
        self.atoms.push((pred, tuple.clone()));
        self.index.insert((pred, tuple.clone()), id);
        id
    }

    /// Resolve an interned id back to its atom.
    pub fn resolve(&self, id: AtomId) -> Option<&(Symbol, Tuple)> {
        self.atoms.get(id as usize)
    }

    /// Look up an atom's id without interning.
    pub fn lookup(&self, pred: Symbol, tuple: &Tuple) -> Option<AtomId> {
        self.index.get(&(pred, tuple.clone())).copied()
    }

    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate in-memory footprint of the log (the overhead model in
    /// DESIGN.md "Provenance & explain"): interner payload + fixed-width
    /// record fields.
    pub fn approx_bytes(&self) -> usize {
        let atoms: usize = self
            .atoms
            .iter()
            .map(|(p, t)| p.as_str().len() + t.byte_size() + 8)
            .sum();
        let records: usize = self
            .records
            .iter()
            .map(|r| 16 + 4 * r.premises.len() + 12 * r.subst.len())
            .sum();
        atoms + records
    }

    /// Record an EDB fact arriving (`sign = +1`) or retracting
    /// (`sign = -1`). EDB records are the proof leaves.
    pub fn record_edb(&mut self, pred: Symbol, tuple: &Tuple, sign: i8, tau: u64) {
        let head = self.intern(pred, tuple);
        let key = (EDB_RULE, head, Vec::new());
        let changed = if sign > 0 {
            self.live.insert(key)
        } else {
            self.live.remove(&key)
        };
        if changed {
            self.records.push(LineageRecord {
                rule_id: EDB_RULE,
                sign,
                head,
                premises: Vec::new(),
                subst: Vec::new(),
                tau,
            });
        }
    }

    /// Record one rule firing. `premises` is the solution's positive-input
    /// list `(literal idx, pred, tuple)`; the substitution witness is
    /// optional (retractions replayed without re-evaluating pass `None`).
    /// Deduplicates by `(rule, head, premises)`: a `+1` for a derivation
    /// already live (or a `-1` for one not live) is dropped. Returns
    /// whether a record was emitted.
    #[allow(clippy::too_many_arguments)]
    pub fn record_firing(
        &mut self,
        rule_id: usize,
        sign: i8,
        pred: Symbol,
        tuple: &Tuple,
        premises: &[(usize, Symbol, Tuple)],
        subst: Option<&Subst>,
        tau: u64,
    ) -> bool {
        let head = self.intern(pred, tuple);
        let prem: Vec<AtomId> = premises
            .iter()
            .map(|(_, p, t)| self.intern(*p, t))
            .collect();
        let key = (rule_id, head, prem.clone());
        let changed = if sign > 0 {
            self.live.insert(key)
        } else {
            self.live.remove(&key)
        };
        if !changed {
            return false;
        }
        let mut witness: Vec<(Symbol, Term)> = subst
            .map(|s| s.iter().map(|(v, t)| (*v, t.clone())).collect())
            .unwrap_or_default();
        witness.sort_by_key(|(v, _)| *v);
        self.records.push(LineageRecord {
            rule_id,
            sign,
            head,
            premises: prem,
            subst: witness,
            tau,
        });
        true
    }

    /// Retract *every* live derivation of an atom (DRed over-deletion kills
    /// the tuple wholesale without enumerating its derivations). Emits one
    /// `-1` record per live derivation.
    pub fn retract_atom(&mut self, pred: Symbol, tuple: &Tuple, tau: u64) {
        let head = match self.lookup(pred, tuple) {
            Some(h) => h,
            None => return,
        };
        let dead: Vec<(usize, AtomId, Vec<AtomId>)> = self
            .live
            .iter()
            .filter(|(_, h, _)| *h == head)
            .cloned()
            .collect();
        for key in dead {
            self.live.remove(&key);
            self.records.push(LineageRecord {
                rule_id: key.0,
                sign: -1,
                head,
                premises: key.2,
                subst: Vec::new(),
                tau,
            });
        }
    }

    /// Atoms whose derivation `(rule, premises)` sets are currently live,
    /// with their live derivations — the materialized set-of-derivations
    /// view consumers (the provenance DAG builder) fold over.
    pub fn live_derivations(&self) -> HashMap<AtomId, Vec<(usize, Vec<AtomId>)>> {
        let mut out: HashMap<AtomId, Vec<(usize, Vec<AtomId>)>> = HashMap::new();
        for (rule, head, prem) in &self.live {
            out.entry(*head).or_default().push((*rule, prem.clone()));
        }
        for v in out.values_mut() {
            v.sort();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::parser::parse_fact;

    fn atom(src: &str) -> (Symbol, Tuple) {
        let (p, args) = parse_fact(src).unwrap();
        (p, Tuple::new(args))
    }

    #[test]
    fn interning_is_dense_and_stable() {
        let mut log = LineageLog::new();
        let (p, t) = atom("e(1, 2)");
        let a = log.intern(p, &t);
        let b = log.intern(p, &t);
        assert_eq!(a, b);
        let (q, u) = atom("e(2, 3)");
        assert_ne!(log.intern(q, &u), a);
        assert_eq!(log.atom_count(), 2);
        assert_eq!(log.resolve(a), Some(&(p, t)));
    }

    #[test]
    fn duplicate_firings_are_deduplicated() {
        let mut log = LineageLog::new();
        let (hp, ht) = atom("t(1, 3)");
        let (ep, e1) = atom("e(1, 2)");
        let (_, e2) = atom("e(2, 3)");
        let prem = vec![(0usize, ep, e1), (1usize, ep, e2)];
        assert!(log.record_firing(2, 1, hp, &ht, &prem, None, 0));
        assert!(!log.record_firing(2, 1, hp, &ht, &prem, None, 0));
        assert_eq!(log.len(), 1);
        // A retraction of the live derivation is recorded, then re-firing
        // records again.
        assert!(log.record_firing(2, -1, hp, &ht, &prem, None, 5));
        assert!(!log.record_firing(2, -1, hp, &ht, &prem, None, 5));
        assert!(log.record_firing(2, 1, hp, &ht, &prem, None, 9));
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn retract_atom_kills_all_derivations() {
        let mut log = LineageLog::new();
        let (hp, ht) = atom("q(7)");
        let (ap, at) = atom("a(7)");
        let (bp, bt) = atom("b(7)");
        log.record_firing(0, 1, hp, &ht, &[(0, ap, at)], None, 0);
        log.record_firing(1, 1, hp, &ht, &[(0, bp, bt)], None, 0);
        log.retract_atom(hp, &ht, 10);
        assert_eq!(log.len(), 4);
        assert_eq!(log.records.iter().filter(|r| r.sign < 0).count(), 2);
        assert!(log.live_derivations().is_empty());
    }

    #[test]
    fn edb_records_are_leaves() {
        let mut log = LineageLog::new();
        let (p, t) = atom("g(0, 1)");
        log.record_edb(p, &t, 1, 3);
        log.record_edb(p, &t, 1, 3); // dup suppressed
        assert_eq!(log.len(), 1);
        assert_eq!(log.records[0].rule_id, EDB_RULE);
        assert!(log.records[0].premises.is_empty());
        assert!(log.approx_bytes() > 0);
    }
}
