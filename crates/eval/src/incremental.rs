//! Incremental maintenance with the **set-of-derivations** approach
//! (Sec. IV-A/IV-B).
//!
//! The engine maintains every derived relation under insertions and
//! deletions to the base streams. For each derived tuple it keeps its set of
//! derivations (Definition 2) — here with *signed multiplicity counts*,
//! because two different blockers of the same negated subgoal must commute
//! (see DESIGN.md "Derivation multiplicity"): a tuple is live iff some
//! derivation has a positive count.
//!
//! Per update `t` on stream `R` with timestamp τ (processed in timestamp
//! order, mirroring Theorem 3's virtual serialization):
//!
//! * for every rule and every occurrence of `R` (positive *or* negated),
//!   compute `T_r` by pinning that occurrence to `t` — the paper's
//!   `T_s1 :- R1, …, t_s1, NOT S2, …` construction — under the *staircase*
//!   convention for self-joins (occurrences before the updated one see the
//!   new state, occurrences after it the old state);
//! * the sign is `+` for inserts at positive occurrences and deletes at
//!   negated occurrences, `−` otherwise;
//! * count transitions 0→live emit a derived insertion, live→0 a derived
//!   deletion, which cascade through higher rules exactly like base updates
//!   (the derived-stream view of Sec. III-B).

use crate::aggregate::aggregate_rule;
use crate::error::EvalError;
use crate::eval_body::{instantiate_head, BodyEval, TupleFilter};
use crate::lineage::LineageLog;
use crate::relation::{Database, TupleMeta};
use crate::seminaive::effective_windows;
use sensorlog_logic::analyze::Analysis;
use sensorlog_logic::ast::{Literal, Rule};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::flat::FlatSubst;
use sensorlog_logic::intern;
use sensorlog_logic::unify::{match_term, Subst};
use sensorlog_logic::{Symbol, Term, Tuple};
use sensorlog_telemetry::Profiler;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

/// Insert or delete.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum UpdateKind {
    Insert,
    Delete,
}

/// A stream update (base or derived).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Update {
    pub pred: Symbol,
    pub tuple: Tuple,
    pub kind: UpdateKind,
    /// Local timestamp of the update event (Definition 2).
    pub ts: u64,
}

impl Update {
    pub fn insert(pred: Symbol, tuple: Tuple, ts: u64) -> Update {
        Update {
            pred,
            tuple,
            kind: UpdateKind::Insert,
            ts,
        }
    }

    pub fn delete(pred: Symbol, tuple: Tuple, ts: u64) -> Update {
        Update {
            pred,
            tuple,
            kind: UpdateKind::Delete,
            ts,
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.kind {
            UpdateKind::Insert => '+',
            UpdateKind::Delete => '-',
        };
        write!(f, "{}{}{} @{}", op, self.pred, self.tuple, self.ts)
    }
}

/// One derivation of a derived tuple: the rule used plus the positive
/// subgoal matches, keyed by literal position (Definition 2 extended with
/// the rule ID, as the paper specifies).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Derivation {
    pub rule_id: usize,
    pub inputs: Vec<(usize, Symbol, Tuple)>,
}

/// Counters exposed for the experiments (state size = the paper's "space
/// overhead of storing the derivations").
#[derive(Clone, Copy, Debug, Default)]
pub struct IncStats {
    pub updates_processed: u64,
    pub derived_emitted: u64,
    pub body_evals: u64,
    pub max_derivations: usize,
}

/// Incremental engine with set-of-derivations maintenance.
pub struct IncrementalEngine {
    pub analysis: Analysis,
    pub reg: BuiltinRegistry,
    pub db: Database,
    windows: BTreeMap<Symbol, u64>,
    derivs: HashMap<(Symbol, Tuple), HashMap<Derivation, i64>>,
    /// Current head tuple per (agg rule id, group key).
    agg_groups: HashMap<(usize, Vec<Term>), Tuple>,
    /// rule index: pred → [(rule index in program, literal idx, negated)]
    occurrences: HashMap<Symbol, Vec<(usize, usize, bool)>>,
    /// Derived predicates (for stale-update suppression).
    idb: BTreeSet<Symbol>,
    /// Predicates defined by aggregate rules (liveness via `agg_groups`).
    agg_heads: BTreeSet<Symbol>,
    pub stats: IncStats,
    /// Phase profiler (disabled by default): times update application and
    /// aggregate-group recomputation.
    pub profiler: Profiler,
    /// Cascade guard.
    pub max_cascade: usize,
    /// Runtime check for the *locally non-recursive* property (Sec. IV-C):
    /// when enabled, every new derivation is checked for a cycle in the
    /// tuple dependency graph and evaluation fails with
    /// [`EvalError::DerivationCycle`] instead of silently keeping zombie
    /// support. Off by default (costs a DFS per derivation).
    pub check_local_recursion: bool,
    /// Probe via relation indexes (planner-registered, maintained through
    /// insert/delete). Disable for the scan A/B baseline.
    pub use_index: bool,
    /// Opt-in per-firing lineage capture (the continuous-engine analogue of
    /// [`crate::EvalConfig::record_lineage`]). `None` = disabled: one
    /// branch per derivation transition, no allocation.
    lineage: Option<LineageLog>,
}

impl IncrementalEngine {
    pub fn new(analysis: Analysis, reg: BuiltinRegistry) -> Result<IncrementalEngine, EvalError> {
        // Validate: a predicate defined by an aggregate rule must not also
        // have non-aggregate rules (liveness would mix two mechanisms).
        let mut agg_heads: BTreeSet<Symbol> = BTreeSet::new();
        let mut plain_heads: BTreeSet<Symbol> = BTreeSet::new();
        for r in &analysis.program.rules {
            if r.agg.is_some() {
                agg_heads.insert(r.head.pred);
            } else {
                plain_heads.insert(r.head.pred);
            }
        }
        if let Some(p) = agg_heads.intersection(&plain_heads).next() {
            return Err(EvalError::Internal(format!(
                "predicate {p} mixes aggregate and plain rules; unsupported incrementally"
            )));
        }

        let mut occurrences: HashMap<Symbol, Vec<(usize, usize, bool)>> = HashMap::new();
        for (ri, r) in analysis.program.rules.iter().enumerate() {
            for (li, lit) in r.body.iter().enumerate() {
                match lit {
                    Literal::Pos(a) => occurrences.entry(a.pred).or_default().push((ri, li, false)),
                    Literal::Neg(a) => occurrences.entry(a.pred).or_default().push((ri, li, true)),
                    _ => {}
                }
            }
        }
        let windows = effective_windows(&analysis);
        let idb = analysis.program.idb_preds();
        let mut db = Database::new();
        crate::planner::register_program_indexes(&mut db, &analysis.program.rules);
        Ok(IncrementalEngine {
            analysis,
            reg,
            db,
            windows,
            derivs: HashMap::new(),
            agg_groups: HashMap::new(),
            occurrences,
            idb,
            agg_heads,
            stats: IncStats::default(),
            profiler: Profiler::disabled(),
            max_cascade: 1_000_000,
            check_local_recursion: false,
            use_index: true,
            lineage: None,
        })
    }

    /// Enable/disable per-firing lineage capture. Enabling starts a fresh
    /// log; every subsequent derivation-count transition (0 → live,
    /// live → 0) and base-stream update is recorded with its rule id,
    /// substitution witness, and premise atoms.
    pub fn set_record_lineage(&mut self, on: bool) {
        self.lineage = if on { Some(LineageLog::new()) } else { None };
    }

    pub fn lineage(&self) -> Option<&LineageLog> {
        self.lineage.as_ref()
    }

    pub fn take_lineage(&mut self) -> Option<LineageLog> {
        self.lineage.take()
    }

    pub fn from_source(src: &str, reg: BuiltinRegistry) -> Result<IncrementalEngine, EvalError> {
        let prog =
            sensorlog_logic::parse_program(src).map_err(|e| EvalError::Internal(e.to_string()))?;
        let analysis = sensorlog_logic::analyze(&prog, &reg)?;
        IncrementalEngine::new(analysis, reg)
    }

    /// Number of stored derivation entries (the space-overhead metric).
    pub fn derivation_count(&self) -> usize {
        self.derivs.values().map(HashMap::len).sum()
    }

    /// Apply one base-stream update and cascade to quiescence. Returns every
    /// derived-stream update emitted (in emission order).
    pub fn apply(&mut self, update: Update) -> Result<Vec<Update>, EvalError> {
        let _span = self.profiler.span("inc.apply");
        let mut queue: VecDeque<Update> = VecDeque::new();
        let mut emitted: Vec<Update> = Vec::new();
        queue.push_back(update);
        let mut steps = 0usize;
        while let Some(u) = queue.pop_front() {
            steps += 1;
            if steps > self.max_cascade {
                return Err(EvalError::LimitExceeded {
                    what: "update cascade",
                    limit: self.max_cascade,
                });
            }
            let produced = self.process_one(&u)?;
            self.stats.updates_processed += 1;
            for d in produced {
                self.stats.derived_emitted += 1;
                emitted.push(d.clone());
                queue.push_back(d);
            }
        }
        self.stats.max_derivations = self.stats.max_derivations.max(self.derivation_count());
        Ok(emitted)
    }

    /// Convenience: apply a batch in timestamp order.
    pub fn apply_all(&mut self, mut updates: Vec<Update>) -> Result<Vec<Update>, EvalError> {
        updates.sort_by_key(|u| u.ts);
        let mut out = Vec::new();
        for u in updates {
            out.extend(self.apply(u)?);
        }
        Ok(out)
    }

    /// Expire tuples past their stream's sliding window ("independently
    /// expiring a tuple after sufficient time" — silent, no join phase).
    /// Derivation entries of expired derived tuples are garbage-collected.
    pub fn advance_time(&mut self, now: u64) {
        let preds: Vec<(Symbol, u64)> = self.windows.iter().map(|(&p, &w)| (p, w)).collect();
        for (p, w) in preds {
            let expired = self.db.relation_mut(p).expire(w, now);
            for t in expired {
                self.derivs.remove(&(p, t));
            }
        }
    }

    /// Is this derived tuple currently live per the derivation ledger?
    fn is_live(&self, pred: Symbol, tuple: &Tuple) -> bool {
        self.derivs
            .get(&(pred, tuple.clone()))
            .is_some_and(|m| m.values().any(|&c| c > 0))
    }

    /// Process one update: physical application, delta computation for every
    /// occurrence, derivation bookkeeping, aggregate group recomputation.
    fn process_one(&mut self, u: &Update) -> Result<Vec<Update>, EvalError> {
        // Stale-update suppression: a queued derived insert whose tuple has
        // already been re-retracted in the ledger (or a delete that was
        // re-asserted) is dropped. This is what keeps XY-style
        // insert/retract races from climbing stages forever — a dead insert
        // must not propagate (its queued counterpart drops symmetrically).
        if self.idb.contains(&u.pred) && !self.agg_heads.contains(&u.pred) {
            let live = self.is_live(u.pred, &u.tuple);
            match u.kind {
                UpdateKind::Insert if !live => return Ok(Vec::new()),
                UpdateKind::Delete if live => return Ok(Vec::new()),
                _ => {}
            }
        }
        // Physical application with duplicate suppression.
        match u.kind {
            UpdateKind::Insert => {
                if !self
                    .db
                    .relation_mut(u.pred)
                    .insert(u.tuple.clone(), TupleMeta::at(u.ts))
                {
                    return Ok(Vec::new()); // duplicate: not a generation
                }
            }
            UpdateKind::Delete => {
                if !self.db.contains(u.pred, &u.tuple) {
                    return Ok(Vec::new());
                }
            }
        }

        // Base-stream updates are the lineage leaves (derived updates get
        // their own firing records at the transitions below).
        if !self.idb.contains(&u.pred) {
            if let Some(log) = self.lineage.as_mut() {
                let sign = if u.kind == UpdateKind::Insert { 1 } else { -1 };
                log.record_edb(u.pred, &u.tuple, sign, u.ts);
            }
        }

        // Delta computation per occurrence.
        let occs = self.occurrences.get(&u.pred).cloned().unwrap_or_default();
        let mut deltas: Vec<(Symbol, Tuple, Derivation, i64, Option<FlatSubst>)> = Vec::new();
        let mut agg_dirty: Vec<(usize, Vec<Term>)> = Vec::new();
        for (ri, li, negated) in occs {
            let rule = &self.analysis.program.rules[ri];
            // Staircase filter over same-pred occurrences (see module doc).
            let mut excluded: Vec<usize> = Vec::new();
            for (rj, lj, _) in self.occurrences.get(&u.pred).into_iter().flatten() {
                if *rj != ri {
                    continue;
                }
                let exclude = match u.kind {
                    UpdateKind::Insert => *lj > li, // later occurrences: old state
                    UpdateKind::Delete => *lj < li, // earlier occurrences: new state
                };
                if exclude {
                    excluded.push(*lj);
                }
            }
            let filter = TupleFilter {
                pred: u.pred,
                tuple: u.tuple.clone(),
                literal_indexes: excluded,
            };
            let ev = BodyEval {
                db: &self.db,
                reg: &self.reg,
                filter: Some(&filter),
                vis: None,
                use_index: self.use_index,
            };
            self.stats.body_evals += 1;
            let sols = ev.solutions(&rule.body, FlatSubst::new(), Some((li, &u.tuple)))?;
            if rule.agg.is_some() {
                // Record affected groups; recomputed below against the
                // post-update state.
                for sol in &sols {
                    let key = self.group_key(rule, &sol.subst)?;
                    if !agg_dirty.contains(&(ri, key.clone())) {
                        agg_dirty.push((ri, key));
                    }
                }
                continue;
            }
            let sign = match (u.kind, negated) {
                (UpdateKind::Insert, false) | (UpdateKind::Delete, true) => 1,
                (UpdateKind::Insert, true) | (UpdateKind::Delete, false) => -1,
            };
            for sol in &sols {
                let head = instantiate_head(rule, &sol.subst, &self.reg)?;
                // Drop directly self-supporting derivations (head among its
                // own inputs): sound, and it keeps 1-cycles out of the
                // tuple dependency graph. Longer cycles are outside the
                // supported class — the paper's *locally non-recursive*
                // restriction (Sec. IV-C); use the rederivation engine for
                // general recursive programs with deletions.
                if sol
                    .inputs
                    .iter()
                    .any(|(_, p, t)| *p == rule.head.pred && *t == head)
                {
                    continue;
                }
                let d = Derivation {
                    rule_id: rule.id,
                    inputs: sol.inputs.clone(),
                };
                let witness = self.lineage.is_some().then(|| sol.subst.clone());
                deltas.push((rule.head.pred, head, d, sign, witness));
            }
        }

        // Physical removal for deletes happens *after* the delta pass (the
        // old state must be joinable), before aggregate recomputation.
        // NOTE: the derivation map of a deleted tuple is *not* dropped here:
        // negative counts (derivations blocked before their positive part
        // appeared, or blocked more than once) must survive so later
        // blocker deletions balance the ledger. GC happens at window expiry.
        if u.kind == UpdateKind::Delete {
            self.db.remove(u.pred, &u.tuple);
        }

        let mut out: Vec<Update> = Vec::new();

        // Optional locally-non-recursive runtime check (Sec. IV-C): the
        // dependency graph over derived tuples must stay acyclic.
        if self.check_local_recursion {
            for (pred, tuple, d, sign, _) in &deltas {
                if *sign > 0 && self.derivation_closes_cycle(*pred, tuple, d) {
                    return Err(EvalError::DerivationCycle { pred: *pred });
                }
            }
        }

        // Derivation bookkeeping with liveness transitions.
        for (pred, tuple, d, sign, witness) in deltas {
            let key = (pred, tuple.clone());
            let map = self.derivs.entry(key).or_default();
            let was_live = map.values().any(|&c| c > 0);
            let d_count = map.get(&d).copied().unwrap_or(0);
            let lin_d = self.lineage.is_some().then(|| d.clone());
            *map.entry(d).or_insert(0) += sign;
            map.retain(|_, &mut c| c != 0);
            let now_live = map.values().any(|&c| c > 0);
            // Lineage: per-derivation liveness transitions, not per-atom —
            // a second derivation of an already-live atom is still a new
            // proof alternative.
            if let Some(dd) = lin_d {
                let d_now = d_count + sign > 0;
                if (d_count > 0) != d_now {
                    if let Some(log) = self.lineage.as_mut() {
                        let boxed = witness.as_ref().map(|w| intern::boundary(|| w.to_subst()));
                        log.record_firing(
                            dd.rule_id,
                            if d_now { 1 } else { -1 },
                            pred,
                            &tuple,
                            &dd.inputs,
                            boxed.as_ref(),
                            u.ts,
                        );
                    }
                }
            }
            if !was_live && now_live {
                out.push(Update::insert(pred, tuple, u.ts));
            } else if was_live && !now_live {
                out.push(Update::delete(pred, tuple, u.ts));
            }
        }

        // Aggregate groups: recompute against the post-update state.
        for (ri, key) in agg_dirty {
            let rule = &self.analysis.program.rules[ri];
            out.extend(self.recompute_agg_group(rule.clone(), key, u.ts)?);
        }
        Ok(out)
    }

    /// Would adding derivation `d` for `(pred, tuple)` close a cycle in the
    /// tuple dependency graph? DFS through the *live* derivations of the
    /// inputs.
    fn derivation_closes_cycle(&self, pred: Symbol, tuple: &Tuple, d: &Derivation) -> bool {
        let target = (pred, tuple.clone());
        let mut stack: Vec<(Symbol, Tuple)> =
            d.inputs.iter().map(|(_, p, t)| (*p, t.clone())).collect();
        let mut seen: std::collections::HashSet<(Symbol, Tuple)> = stack.iter().cloned().collect();
        while let Some(key) = stack.pop() {
            if key == target {
                return true;
            }
            if let Some(map) = self.derivs.get(&key) {
                for (dd, &c) in map {
                    if c <= 0 {
                        continue;
                    }
                    for (_, p, t) in &dd.inputs {
                        let k = (*p, t.clone());
                        if seen.insert(k.clone()) {
                            stack.push(k);
                        }
                    }
                }
            }
        }
        false
    }

    fn group_key(&self, rule: &Rule, subst: &FlatSubst) -> Result<Vec<Term>, EvalError> {
        // Group keys are boxed terms (aggregate machinery is off the hot
        // path); resolve the flat bindings once.
        let subst = intern::boundary(|| subst.to_subst());
        rule.head
            .args
            .iter()
            .map(|a| {
                let g = subst.apply(a);
                if g.is_ground() {
                    self.reg.eval_term(&g).map_err(EvalError::from)
                } else {
                    Err(EvalError::Internal(format!(
                        "group key `{a}` unbound in rule #{}",
                        rule.id
                    )))
                }
            })
            .collect()
    }

    /// Re-evaluate one aggregate group from scratch and diff against the
    /// stored result.
    fn recompute_agg_group(
        &mut self,
        rule: Rule,
        key: Vec<Term>,
        ts: u64,
    ) -> Result<Vec<Update>, EvalError> {
        let _span = self.profiler.span("inc.agg_group");
        // Seed the body with the group key by matching head args.
        let mut boxed_seed = Subst::new();
        for (pat, val) in rule.head.args.iter().zip(key.iter()) {
            if !match_term(pat, val, &mut boxed_seed) {
                return Ok(Vec::new()); // key shape impossible (stale)
            }
        }
        let seed = FlatSubst::from_subst(&boxed_seed).expect("group-key bindings are ground");
        let mut ev = BodyEval::new(&self.db, &self.reg);
        ev.use_index = self.use_index;
        self.stats.body_evals += 1;
        let sols = ev.solutions(&rule.body, seed, None)?;
        // Keep only solutions matching this exact group key (head args may
        // not functionally pin every solution).
        let mut matching = Vec::new();
        for s in sols {
            if self.group_key(&rule, &s.subst)? == key {
                matching.push(s);
            }
        }
        let new_tuple = if matching.is_empty() {
            None
        } else {
            aggregate_rule(&rule, &matching, &self.reg)?
                .into_iter()
                .next()
        };
        let slot = (rule.id, key);
        let old = self.agg_groups.get(&slot).cloned();
        let mut out = Vec::new();
        match (old, new_tuple) {
            (Some(o), Some(n)) if o == n => {}
            (Some(o), Some(n)) => {
                self.agg_groups.insert(slot, n.clone());
                out.push(Update::delete(rule.head.pred, o, ts));
                out.push(Update::insert(rule.head.pred, n, ts));
            }
            (None, Some(n)) => {
                self.agg_groups.insert(slot, n.clone());
                out.push(Update::insert(rule.head.pred, n, ts));
            }
            (Some(o), None) => {
                self.agg_groups.remove(&slot);
                out.push(Update::delete(rule.head.pred, o, ts));
            }
            (None, None) => {}
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seminaive::Engine;
    use sensorlog_logic::parser::parse_fact;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn tup(src: &str) -> Tuple {
        let (_, args) = parse_fact(&format!("x({src})")).unwrap();
        Tuple::new(args)
    }

    fn upd(kind: UpdateKind, fact: &str, ts: u64) -> Update {
        let (p, args) = parse_fact(fact).unwrap();
        Update {
            pred: p,
            tuple: Tuple::new(args),
            kind,
            ts,
        }
    }

    fn ins(fact: &str, ts: u64) -> Update {
        upd(UpdateKind::Insert, fact, ts)
    }

    fn del(fact: &str, ts: u64) -> Update {
        upd(UpdateKind::Delete, fact, ts)
    }

    const UNCOV: &str = r#"
        cov(L, T) :- veh("enemy", L, T), veh("friendly", F, T), dist(L, F) <= 5.
        uncov(L, T) :- not cov(L, T), veh("enemy", L, T).
    "#;

    fn engine(src: &str) -> IncrementalEngine {
        IncrementalEngine::from_source(src, BuiltinRegistry::standard()).unwrap()
    }

    /// Check the incremental state equals the batch oracle on the same EDB.
    fn assert_matches_oracle(inc: &IncrementalEngine, src: &str) {
        let oracle = Engine::from_source(src, BuiltinRegistry::standard()).unwrap();
        // Build the EDB snapshot from the incremental engine's database.
        let edb_preds = inc.analysis.program.edb_preds();
        let mut edb = Database::new();
        for p in &edb_preds {
            for t in inc.db.sorted(*p) {
                edb.insert(*p, t);
            }
        }
        let expect = oracle.run(&edb).unwrap();
        for p in inc.analysis.program.idb_preds() {
            assert_eq!(
                inc.db.sorted(p),
                expect.sorted(p),
                "divergence on predicate {p}"
            );
        }
    }

    #[test]
    fn insert_then_delete_roundtrip() {
        let mut e = engine(UNCOV);
        let out = e.apply(ins(r#"veh("enemy", 10, 1)"#, 1)).unwrap();
        // Uncovered right away.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, UpdateKind::Insert);
        assert_eq!(out[0].pred, sym("uncov"));
        assert!(e.db.contains(sym("uncov"), &tup("10, 1")));

        // A friendly nearby covers it: cov appears, uncov retracts.
        let out = e.apply(ins(r#"veh("friendly", 12, 1)"#, 2)).unwrap();
        assert!(out
            .iter()
            .any(|u| u.pred == sym("cov") && u.kind == UpdateKind::Insert));
        assert!(out
            .iter()
            .any(|u| u.pred == sym("uncov") && u.kind == UpdateKind::Delete));
        assert!(!e.db.contains(sym("uncov"), &tup("10, 1")));

        // Friendly leaves: uncovered again.
        let out = e.apply(del(r#"veh("friendly", 12, 1)"#, 3)).unwrap();
        assert!(out
            .iter()
            .any(|u| u.pred == sym("uncov") && u.kind == UpdateKind::Insert));
        assert_matches_oracle(&e, UNCOV);
    }

    #[test]
    fn duplicate_inserts_suppressed() {
        let mut e = engine(UNCOV);
        e.apply(ins(r#"veh("enemy", 10, 1)"#, 1)).unwrap();
        let out = e.apply(ins(r#"veh("enemy", 10, 1)"#, 2)).unwrap();
        assert!(out.is_empty());
        // A single delete fully retracts.
        e.apply(del(r#"veh("enemy", 10, 1)"#, 3)).unwrap();
        assert!(!e.db.contains(sym("uncov"), &tup("10, 1")));
    }

    #[test]
    fn delete_of_absent_is_noop() {
        let mut e = engine(UNCOV);
        let out = e.apply(del(r#"veh("enemy", 99, 9)"#, 1)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn two_blockers_commute() {
        // The multiplicity-count rationale: two friendlies cover the same
        // enemy; removing them in either order must re-raise the alert only
        // after both are gone.
        let src = UNCOV;
        for order in [[1, 2], [2, 1]] {
            let mut e = engine(src);
            e.apply(ins(r#"veh("enemy", 10, 1)"#, 1)).unwrap();
            e.apply(ins(r#"veh("friendly", 11, 1)"#, 2)).unwrap();
            e.apply(ins(r#"veh("friendly", 12, 1)"#, 3)).unwrap();
            assert!(!e.db.contains(sym("uncov"), &tup("10, 1")));
            let f = |i: i64| format!(r#"veh("friendly", 1{i}, 1)"#);
            e.apply(del(&f(order[0] as i64), 4)).unwrap();
            assert!(
                !e.db.contains(sym("uncov"), &tup("10, 1")),
                "still covered by the other friendly"
            );
            e.apply(del(&f(order[1] as i64), 5)).unwrap();
            assert!(e.db.contains(sym("uncov"), &tup("10, 1")));
            assert_matches_oracle(&e, src);
        }
    }

    #[test]
    fn self_join_staircase_exact() {
        // q(X, Z) :- e(X, Y), e(Y, Z): inserting e(1,1) must create exactly
        // one derivation of q(1,1), and deleting it exactly remove it.
        let src = "q(X, Z) :- e(X, Y), e(Y, Z).";
        let mut e = engine(src);
        e.apply(ins("e(1, 1)", 1)).unwrap();
        assert!(e.db.contains(sym("q"), &tup("1, 1")));
        assert_eq!(e.derivation_count(), 1);
        e.apply(del("e(1, 1)", 2)).unwrap();
        assert!(!e.db.contains(sym("q"), &tup("1, 1")));
        assert_matches_oracle(&e, src);
    }

    #[test]
    fn self_join_chain() {
        let src = "q(X, Z) :- e(X, Y), e(Y, Z).";
        let mut e = engine(src);
        e.apply(ins("e(1, 2)", 1)).unwrap();
        e.apply(ins("e(2, 3)", 2)).unwrap();
        assert!(e.db.contains(sym("q"), &tup("1, 3")));
        e.apply(del("e(1, 2)", 3)).unwrap();
        assert!(!e.db.contains(sym("q"), &tup("1, 3")));
        assert_matches_oracle(&e, src);
    }

    #[test]
    fn multiple_derivations_protect_tuple() {
        // Two paths derive the same tuple; deleting one keeps it alive.
        let src = r#"
            q(Z) :- a(Z).
            q(Z) :- b(Z).
        "#;
        let mut e = engine(src);
        e.apply(ins("a(7)", 1)).unwrap();
        e.apply(ins("b(7)", 2)).unwrap();
        assert!(e.db.contains(sym("q"), &tup("7")));
        e.apply(del("a(7)", 3)).unwrap();
        assert!(e.db.contains(sym("q"), &tup("7")), "b-derivation remains");
        e.apply(del("b(7)", 4)).unwrap();
        assert!(!e.db.contains(sym("q"), &tup("7")));
    }

    #[test]
    fn cascading_through_strata() {
        let src = r#"
            a(X) :- base(X).
            b(X) :- a(X), not blocked(X).
            c(X) :- b(X).
        "#;
        let mut e = engine(src);
        let out = e.apply(ins("base(1)", 1)).unwrap();
        assert_eq!(out.len(), 3); // a, b, c inserts
        assert!(e.db.contains(sym("c"), &tup("1")));
        let out = e.apply(ins("blocked(1)", 2)).unwrap();
        assert!(out
            .iter()
            .any(|u| u.pred == sym("c") && u.kind == UpdateKind::Delete));
        assert!(!e.db.contains(sym("c"), &tup("1")));
        e.apply(del("blocked(1)", 3)).unwrap();
        assert!(e.db.contains(sym("c"), &tup("1")));
        assert_matches_oracle(&e, src);
    }

    #[test]
    fn recursive_transitive_closure_incremental() {
        let src = r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
        "#;
        let mut e = engine(src);
        for (i, edge) in [(1, 2), (2, 3), (3, 4)].iter().enumerate() {
            e.apply(ins(&format!("e({}, {})", edge.0, edge.1), i as u64))
                .unwrap();
        }
        assert!(e.db.contains(sym("t"), &tup("1, 4")));
        assert_matches_oracle(&e, src);
        // Delete the middle edge: everything through it disappears.
        e.apply(del("e(2, 3)", 10)).unwrap();
        assert!(!e.db.contains(sym("t"), &tup("1, 3")));
        assert!(!e.db.contains(sym("t"), &tup("1, 4")));
        assert!(e.db.contains(sym("t"), &tup("1, 2")));
        assert!(e.db.contains(sym("t"), &tup("3, 4")));
        assert_matches_oracle(&e, src);
    }

    #[test]
    fn xy_program_incremental_logich() {
        let src = r#"
            h(0, 0, 0).
            h(0, X, 1) :- g(0, X).
            hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
            h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
        "#;
        let mut e = engine(src);
        // The base fact rule has an empty body; seed it manually via a
        // surrogate: empty-body rules don't react to updates, so bootstrap
        // by inserting the root fact as if derived.
        // Instead: drive g edges; h(0,0,0) must come from the fact rule —
        // emulate with an explicit root update on a base-less variant:
        let mut ts = 1;
        let mut drive = |e: &mut IncrementalEngine, a: i64, b: i64| {
            e.apply(ins(&format!("g({a}, {b})"), ts)).unwrap();
            e.apply(ins(&format!("g({b}, {a})"), ts + 1)).unwrap();
            ts += 2;
        };
        // Without h(0,0,0) the import fact is missing; insert it directly
        // as a derived seed through the db (fact rules are static):
        e.db.insert(sym("h"), tup("0, 0, 0"));
        drive(&mut e, 0, 1);
        drive(&mut e, 1, 2);
        assert!(e.db.contains(sym("h"), &tup("0, 1, 1")));
        assert!(e.db.contains(sym("h"), &tup("1, 2, 2")));
        // Add shortcut 0-2: h(0,2,1) appears and hp(2,2) retracts h(1,2,2).
        drive(&mut e, 0, 2);
        assert!(e.db.contains(sym("h"), &tup("0, 2, 1")));
        assert!(!e.db.contains(sym("h"), &tup("1, 2, 2")));
    }

    #[test]
    fn aggregate_maintenance() {
        let src = "best(G, min<V>) :- m(G, V).";
        let mut e = engine(src);
        e.apply(ins("m(1, 5)", 1)).unwrap();
        assert!(e.db.contains(sym("best"), &tup("1, 5")));
        e.apply(ins("m(1, 3)", 2)).unwrap();
        assert!(e.db.contains(sym("best"), &tup("1, 3")));
        assert!(!e.db.contains(sym("best"), &tup("1, 5")));
        e.apply(del("m(1, 3)", 3)).unwrap();
        assert!(e.db.contains(sym("best"), &tup("1, 5")));
        e.apply(del("m(1, 5)", 4)).unwrap();
        assert_eq!(e.db.len_of(sym("best")), 0);
        assert_matches_oracle(&e, src);
    }

    #[test]
    fn aggregate_count_updates() {
        let src = "deg(X, count<Y>) :- e(X, Y).";
        let mut e = engine(src);
        e.apply(ins("e(1, 2)", 1)).unwrap();
        e.apply(ins("e(1, 3)", 2)).unwrap();
        assert!(e.db.contains(sym("deg"), &tup("1, 2")));
        e.apply(del("e(1, 2)", 3)).unwrap();
        assert!(e.db.contains(sym("deg"), &tup("1, 1")));
    }

    #[test]
    fn window_expiry_is_silent() {
        let src = r#"
            .window s 100.
            q(X) :- s(X).
        "#;
        let mut e = engine(src);
        e.apply(ins("s(1)", 10)).unwrap();
        assert!(e.db.contains(sym("q"), &tup("1")));
        e.advance_time(200);
        // Base tuple expired; derived q expired too (inherited window);
        // no deletion events were cascaded (expiry is silent).
        assert!(!e.db.contains(sym("s"), &tup("1")));
        assert!(!e.db.contains(sym("q"), &tup("1")));
        assert_eq!(e.derivation_count(), 0);
    }

    #[test]
    fn local_recursion_check_catches_cycles() {
        // A 2-cycle (1->2, 2->1) creates mutually supporting t tuples —
        // outside the locally non-recursive class; strict mode must say so.
        let src = r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
        "#;
        let mut e = engine(src);
        e.check_local_recursion = true;
        e.apply(ins("e(1, 2)", 1)).unwrap();
        let err = e.apply(ins("e(2, 1)", 2)).unwrap_err();
        assert!(matches!(
            err,
            crate::error::EvalError::DerivationCycle { .. }
        ));
        // DAGs sail through.
        let mut e = engine(src);
        e.check_local_recursion = true;
        for (i, edge) in ["e(1, 2)", "e(2, 3)", "e(1, 3)"].iter().enumerate() {
            e.apply(ins(edge, i as u64)).unwrap();
        }
        assert!(e.db.contains(sym("t"), &tup("1, 3")));
    }

    #[test]
    fn stats_track_work() {
        let mut e = engine(UNCOV);
        e.apply(ins(r#"veh("enemy", 10, 1)"#, 1)).unwrap();
        assert!(e.stats.updates_processed >= 1);
        assert!(e.stats.body_evals >= 1);
        assert!(e.stats.derived_emitted >= 1);
    }

    #[test]
    fn lineage_tracks_derivation_transitions() {
        use crate::lineage::EDB_RULE;
        let src = r#"
            q(X, Y) :- r1(X, K), r2(Y, K).
        "#;
        let mut e = engine(src);
        e.set_record_lineage(true);
        e.apply(ins("r1(1, 7)", 10)).unwrap();
        e.apply(ins("r2(2, 7)", 20)).unwrap();
        let log = e.lineage().unwrap();
        // Two EDB leaves + one firing for q(1,2), with premises + witness.
        assert_eq!(
            log.records.iter().filter(|r| r.rule_id == EDB_RULE).count(),
            2
        );
        let firing = log
            .records
            .iter()
            .find(|r| r.rule_id != EDB_RULE)
            .expect("join firing recorded");
        assert_eq!(firing.sign, 1);
        assert_eq!(firing.premises.len(), 2);
        assert_eq!(firing.tau, 20);
        assert!(!firing.subst.is_empty());
        // Deleting a premise records the retraction of both the EDB leaf
        // and the derivation.
        e.apply(del("r1(1, 7)", 30)).unwrap();
        let log = e.lineage().unwrap();
        assert_eq!(log.records.iter().filter(|r| r.sign < 0).count(), 2);
        assert!(log
            .live_derivations()
            .values()
            .all(|ds| ds.iter().all(|(r, _)| *r == EDB_RULE || ds.is_empty())));
        // Disabled engines record nothing.
        let mut quiet = engine(src);
        quiet.apply(ins("r1(1, 7)", 10)).unwrap();
        assert!(quiet.lineage().is_none());
    }
}
