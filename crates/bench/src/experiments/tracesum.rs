//! Table 3 (ours): per-run event-trace summaries.
//!
//! Not a paper figure — this table exercises the trace layer
//! (`sensorlog_netsim::trace`) end to end on the Fig. 4 workload and
//! records the message mix each strategy generates: transmission attempts
//! by payload kind, drops by reason, and the simulator's event-queue
//! high-water mark. The loss-free rows double as a sanity check that the
//! streaming trace counters agree with the radio metrics.

use crate::common::{join_strategies, run_case};
use crate::table::Table;
use sensorlog_core::workload::UniformStreams;
use sensorlog_core::{PassMode, Strategy};
use sensorlog_logic::Symbol;
use sensorlog_netsim::{SimConfig, Topology};

const JOIN2: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::Perpendicular { .. } => "PA",
        Strategy::Centroid => "Centroid",
        Strategy::NaiveBroadcast => "Broadcast",
        Strategy::LocalStorage => "LocalStore",
    }
}

/// Trace-summary table: 8×8 grid, two-stream join, loss-free and lossy.
pub fn table3() -> Table {
    let mut t = Table::new(
        "table3",
        "event-trace summary: 8x8 grid two-stream join (sends by kind, drops, queue depth)",
        &[
            "strategy",
            "loss",
            "sends",
            "store",
            "probe",
            "result",
            "delivered",
            "drops",
            "max queue",
        ],
    );
    for loss in [0.0f64, 0.1] {
        for strategy in join_strategies() {
            let topo = Topology::square_grid(8);
            let events = UniformStreams {
                preds: vec![Symbol::intern("r1"), Symbol::intern("r2")],
                interval: 8_000,
                duration: 16_000,
                delete_fraction: 0.0,
                delete_lag: 0,
                groups: 128,
                seed: 49,
            }
            .events(&topo);
            let sim = SimConfig {
                loss_prob: loss,
                // One retry, not two: with p=0.1 a message dies with
                // probability 1e-2, so even the ~1k-send Centroid row
                // expects ~11 exhausted drops and the drops>0 assertion
                // below is statistically safe; at two retries (1e-3) the
                // small rows turn it into a seed lottery.
                retries: if loss > 0.0 { 1 } else { 0 },
                ..SimConfig::default()
            };
            let p = run_case(
                JOIN2,
                topo,
                strategy,
                PassMode::OnePass,
                sim,
                None,
                events,
                Symbol::intern("q"),
                30_000_000,
            );
            // The trace layer and the radio metrics count the same
            // transmissions through independent code paths.
            assert_eq!(p.trace.sends, p.total_tx, "trace vs metrics mismatch");
            // Every transmission attempt either gets its message delivered
            // or is a failed attempt; only retry-exhausted messages become
            // Drop records, so the counts match exactly when retries = 0
            // and sends exceed the sum otherwise.
            // Air losses with a retry budget are reported as `Retries`
            // (budget exhausted), without one as `Loss`; this row runs with
            // retries = 1, so exhausted drops land in `drops_retries`.
            let dropped = p.trace.drops_loss
                + p.trace.drops_dead
                + p.trace.drops_retries
                + p.trace.drops_partition;
            if loss == 0.0 {
                assert_eq!(p.trace.sends, p.trace.delivers, "loss-free: all delivered");
            } else {
                assert!(
                    p.trace.sends >= p.trace.delivers + dropped,
                    "attempts must cover deliveries and drops"
                );
                assert!(dropped > 0, "lossy run must drop something");
            }
            let kind = |k: &str| p.trace.sends_by_kind.get(k).copied().unwrap_or(0);
            t.row(vec![
                strategy_name(strategy).into(),
                format!("{loss:.1}"),
                p.trace.sends.to_string(),
                kind("store").to_string(),
                kind("probe").to_string(),
                kind("result").to_string(),
                p.trace.delivers.to_string(),
                dropped.to_string(),
                p.max_queue_depth.to_string(),
            ]);
        }
    }
    t
}
