//! Cross-node provenance recording — the distributed half of the
//! provenance plane (the centralized half is `sensorlog_eval::lineage`).
//!
//! A [`Provenance`] handle is shared by every node of a deployment, exactly
//! like the telemetry handle: disabled by default (one branch per recording
//! site, no allocation), and a **pure observer** when enabled — recording
//! never touches timers, messages, counters, or the RNG, so the netsim
//! journal of a run is byte-identical with the plane on or off.
//!
//! Four record kinds compose into the global causal DAG keyed by
//! [`TupleId`]:
//!
//! * [`ProvRecord::Edb`] — a base fact generated/retracted at its source
//!   (or a static fact injected at its owner): the proof **leaves**;
//! * [`ProvRecord::Deriv`] — a derivation delta landing at the owner of the
//!   derived tuple, carrying the [`DerivationKey`] whose input ids are the
//!   proof edges, plus the originating update's id for latency attribution;
//! * [`ProvRecord::Mint`] — the owner propagating a liveness transition
//!   after holddown: binds the derived tuple to the [`TupleId`] that
//!   downstream derivations will reference;
//! * [`ProvRecord::Hop`] — one routed hop of a payload that carries an
//!   originating tuple id (store walks, probes, result deltas), attributing
//!   per-edge simulated latency to the tuple that caused the traffic.
//!   Broadcast floods (NaiveBroadcast storage, heartbeats) are not
//!   hop-recorded: they carry no single causal origin per link.
//!
//! Records serialize to JSONL (one object per line) in the same hand-rolled
//! dialect as `sensorlog_netsim::trace`, so per-node logs can be shipped
//! out-of-band and re-ingested by `sensorlog-provenance`.

use crate::tupleid::{DerivationKey, TupleId};
use sensorlog_eval::UpdateKind;
use sensorlog_logic::{parse_fact, Symbol, Tuple};
use sensorlog_netsim::{NodeId, SimTime};
use std::fmt;
use std::sync::{Arc, Mutex};

/// One provenance event observed by the distributed runtime.
#[derive(Clone, Debug, PartialEq)]
pub enum ProvRecord {
    /// A base (or static) fact entering/leaving the network at `node`.
    Edb {
        node: NodeId,
        pred: Symbol,
        tuple: Tuple,
        id: TupleId,
        kind: UpdateKind,
        tau: SimTime,
    },
    /// A derivation delta applied at the derived tuple's owner.
    Deriv {
        owner: NodeId,
        pred: Symbol,
        tuple: Tuple,
        key: DerivationKey,
        sign: i8,
        /// Event timestamp of the originating update (the delta's τ).
        tau: SimTime,
        /// Id of the update whose probe emitted this delta.
        origin: TupleId,
        /// Owner-local arrival time.
        at: SimTime,
    },
    /// The owner finalizing a liveness transition (post-holddown) and
    /// propagating the derived fact under `id`.
    Mint {
        owner: NodeId,
        pred: Symbol,
        tuple: Tuple,
        id: TupleId,
        kind: UpdateKind,
        at: SimTime,
    },
    /// One routed hop of an origin-carrying payload (`kind` is the wire
    /// kind: `store`, `probe`, `result`, `centroid`).
    Hop {
        from: NodeId,
        to: NodeId,
        dest: NodeId,
        kind: &'static str,
        origin: TupleId,
        at: SimTime,
    },
}

/// Shared recording handle (clone-per-node, telemetry-style).
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    inner: Option<Arc<Mutex<Vec<ProvRecord>>>>,
}

impl Provenance {
    /// The no-op handle: recording sites cost one branch.
    pub fn disabled() -> Provenance {
        Provenance { inner: None }
    }

    /// A live handle backed by a shared record log.
    pub fn enabled() -> Provenance {
        Provenance {
            inner: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event. The closure only runs when the plane is enabled,
    /// so disabled handles never construct (or clone into) a record.
    pub fn record_with(&self, f: impl FnOnce() -> ProvRecord) {
        if let Some(log) = &self.inner {
            log.lock().unwrap().push(f());
        }
    }

    /// Number of records captured so far (0 when disabled).
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |l| l.lock().unwrap().len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out the records captured so far.
    pub fn snapshot(&self) -> Vec<ProvRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |l| l.lock().unwrap().clone())
    }

    /// Drain the log, leaving it empty (for incremental shipping).
    pub fn take(&self) -> Vec<ProvRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |l| std::mem::take(&mut *l.lock().unwrap()))
    }

    /// Approximate in-memory footprint of the captured records.
    pub fn approx_bytes(&self) -> usize {
        self.inner.as_ref().map_or(0, |l| {
            l.lock().unwrap().iter().map(ProvRecord::approx_bytes).sum()
        })
    }
}

impl ProvRecord {
    /// Approximate in-memory footprint (the DESIGN.md overhead model).
    pub fn approx_bytes(&self) -> usize {
        match self {
            ProvRecord::Edb { pred, tuple, .. } => {
                pred.as_str().len() + tuple.byte_size() + 16 + 10
            }
            ProvRecord::Deriv {
                pred, tuple, key, ..
            } => pred.as_str().len() + tuple.byte_size() + key.byte_size() + 16 + 18,
            ProvRecord::Mint { pred, tuple, .. } => {
                pred.as_str().len() + tuple.byte_size() + 16 + 10
            }
            ProvRecord::Hop { .. } => 38,
        }
    }

    /// The originating tuple id this record is causally keyed by.
    pub fn origin(&self) -> TupleId {
        match self {
            ProvRecord::Edb { id, .. } | ProvRecord::Mint { id, .. } => *id,
            ProvRecord::Deriv { origin, .. } | ProvRecord::Hop { origin, .. } => *origin,
        }
    }
}

// ----------------------------------------------------------------------
// JSONL round-trip
// ----------------------------------------------------------------------

/// Parse failure for [`from_jsonl`], with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvParseError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for ProvParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "provenance line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ProvParseError {}

fn atom_str(pred: Symbol, tuple: &Tuple) -> String {
    format!("{pred}{tuple}")
}

fn id_str(id: TupleId) -> String {
    format!("{}@{}#{}", id.node.0, id.ts, id.seq)
}

fn parse_id(s: &str) -> Option<TupleId> {
    let (node, rest) = s.split_once('@')?;
    let (ts, seq) = rest.split_once('#')?;
    Some(TupleId {
        node: NodeId(node.parse().ok()?),
        ts: ts.parse().ok()?,
        seq: seq.parse().ok()?,
    })
}

fn key_str(key: &DerivationKey) -> String {
    let inputs: Vec<String> = key
        .inputs
        .iter()
        .map(|(lit, id)| format!("{lit}:{}", id_str(*id)))
        .collect();
    format!("{}|{}", key.rule_id, inputs.join(","))
}

fn parse_key(s: &str) -> Option<DerivationKey> {
    let (rule, rest) = s.split_once('|')?;
    let mut inputs = Vec::new();
    if !rest.is_empty() {
        for part in rest.split(',') {
            let (lit, id) = part.split_once(':')?;
            inputs.push((lit.parse().ok()?, parse_id(id)?));
        }
    }
    Some(DerivationKey::new(rule.parse().ok()?, inputs))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Raw value slice for `"key":` in a single-line JSON object.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(inner) = rest.strip_prefix('"') {
        let mut escaped = false;
        for (i, ch) in inner.char_indices() {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                return Some(&rest[..i + 2]);
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let raw = field_raw(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'u' => {
                let hex: String = (&mut chars).take(4).collect();
                out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
            }
            other => out.push(other),
        }
    }
    Some(out)
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

fn field_i64(line: &str, key: &str) -> Option<i64> {
    field_raw(line, key)?.parse().ok()
}

fn wire_kind(s: &str) -> &'static str {
    match s {
        "store" => "store",
        "probe" => "probe",
        "result" => "result",
        "centroid" => "centroid",
        other => Box::leak(other.to_string().into_boxed_str()),
    }
}

fn update_kind(s: &str) -> Option<UpdateKind> {
    match s {
        "ins" => Some(UpdateKind::Insert),
        "del" => Some(UpdateKind::Delete),
        _ => None,
    }
}

fn kind_str(k: UpdateKind) -> &'static str {
    match k {
        UpdateKind::Insert => "ins",
        UpdateKind::Delete => "del",
    }
}

/// Serialize records to JSONL, one object per line.
pub fn to_jsonl(records: &[ProvRecord]) -> String {
    use fmt::Write;
    let mut s = String::with_capacity(records.len() * 96);
    for r in records {
        match r {
            ProvRecord::Edb {
                node,
                pred,
                tuple,
                id,
                kind,
                tau,
            } => {
                let _ = writeln!(
                    s,
                    r#"{{"type":"edb","node":{},"atom":{},"id":{},"kind":"{}","tau":{}}}"#,
                    node.0,
                    json_escape(&atom_str(*pred, tuple)),
                    json_escape(&id_str(*id)),
                    kind_str(*kind),
                    tau
                );
            }
            ProvRecord::Deriv {
                owner,
                pred,
                tuple,
                key,
                sign,
                tau,
                origin,
                at,
            } => {
                let _ = writeln!(
                    s,
                    r#"{{"type":"deriv","owner":{},"atom":{},"key":{},"sign":{},"tau":{},"origin":{},"at":{}}}"#,
                    owner.0,
                    json_escape(&atom_str(*pred, tuple)),
                    json_escape(&key_str(key)),
                    sign,
                    tau,
                    json_escape(&id_str(*origin)),
                    at
                );
            }
            ProvRecord::Mint {
                owner,
                pred,
                tuple,
                id,
                kind,
                at,
            } => {
                let _ = writeln!(
                    s,
                    r#"{{"type":"mint","owner":{},"atom":{},"id":{},"kind":"{}","at":{}}}"#,
                    owner.0,
                    json_escape(&atom_str(*pred, tuple)),
                    json_escape(&id_str(*id)),
                    kind_str(*kind),
                    at
                );
            }
            ProvRecord::Hop {
                from,
                to,
                dest,
                kind,
                origin,
                at,
            } => {
                let _ = writeln!(
                    s,
                    r#"{{"type":"hop","from":{},"to":{},"dest":{},"kind":"{}","origin":{},"at":{}}}"#,
                    from.0,
                    to.0,
                    dest.0,
                    kind,
                    json_escape(&id_str(*origin)),
                    at
                );
            }
        }
    }
    s
}

/// Parse a JSONL provenance log produced by [`to_jsonl`].
pub fn from_jsonl(text: &str) -> Result<Vec<ProvRecord>, ProvParseError> {
    let err = |line: usize, msg: &str| ProvParseError {
        line: line + 1,
        msg: msg.to_string(),
    };
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ty = field_str(line, "type").ok_or_else(|| err(lineno, "missing type"))?;
        let atom = |key: &str| -> Result<(Symbol, Tuple), ProvParseError> {
            let s = field_str(line, key).ok_or_else(|| err(lineno, "missing atom"))?;
            let (pred, terms) =
                parse_fact(&s).map_err(|e| err(lineno, &format!("bad atom `{s}`: {e}")))?;
            Ok((pred, Tuple::new(terms)))
        };
        let id_field = |key: &str| -> Result<TupleId, ProvParseError> {
            let s = field_str(line, key).ok_or_else(|| err(lineno, &format!("missing {key}")))?;
            parse_id(&s).ok_or_else(|| err(lineno, &format!("bad tuple id `{s}`")))
        };
        let node_field = |key: &str| -> Result<NodeId, ProvParseError> {
            Ok(NodeId(
                field_u64(line, key).ok_or_else(|| err(lineno, &format!("missing {key}")))? as u32,
            ))
        };
        let rec = match ty.as_str() {
            "edb" => {
                let (pred, tuple) = atom("atom")?;
                let kind = field_str(line, "kind")
                    .and_then(|k| update_kind(&k))
                    .ok_or_else(|| err(lineno, "missing or bad kind"))?;
                ProvRecord::Edb {
                    node: node_field("node")?,
                    pred,
                    tuple,
                    id: id_field("id")?,
                    kind,
                    tau: field_u64(line, "tau").ok_or_else(|| err(lineno, "missing tau"))?,
                }
            }
            "deriv" => {
                let (pred, tuple) = atom("atom")?;
                let key_s = field_str(line, "key").ok_or_else(|| err(lineno, "missing key"))?;
                let key = parse_key(&key_s)
                    .ok_or_else(|| err(lineno, &format!("bad derivation key `{key_s}`")))?;
                ProvRecord::Deriv {
                    owner: node_field("owner")?,
                    pred,
                    tuple,
                    key,
                    sign: field_i64(line, "sign").ok_or_else(|| err(lineno, "missing sign"))? as i8,
                    tau: field_u64(line, "tau").ok_or_else(|| err(lineno, "missing tau"))?,
                    origin: id_field("origin")?,
                    at: field_u64(line, "at").ok_or_else(|| err(lineno, "missing at"))?,
                }
            }
            "mint" => {
                let (pred, tuple) = atom("atom")?;
                let kind = field_str(line, "kind")
                    .and_then(|k| update_kind(&k))
                    .ok_or_else(|| err(lineno, "missing or bad kind"))?;
                ProvRecord::Mint {
                    owner: node_field("owner")?,
                    pred,
                    tuple,
                    id: id_field("id")?,
                    kind,
                    at: field_u64(line, "at").ok_or_else(|| err(lineno, "missing at"))?,
                }
            }
            "hop" => ProvRecord::Hop {
                from: node_field("from")?,
                to: node_field("to")?,
                dest: node_field("dest")?,
                kind: wire_kind(
                    &field_str(line, "kind").ok_or_else(|| err(lineno, "missing kind"))?,
                ),
                origin: id_field("origin")?,
                at: field_u64(line, "at").ok_or_else(|| err(lineno, "missing at"))?,
            },
            other => return Err(err(lineno, &format!("unknown record type `{other}`"))),
        };
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorlog_logic::Term;

    fn tid(n: u32, ts: SimTime, seq: u32) -> TupleId {
        TupleId {
            node: NodeId(n),
            ts,
            seq,
        }
    }

    fn sample() -> Vec<ProvRecord> {
        let pred = Symbol::intern("q");
        let tuple = Tuple::new(vec![Term::Int(1), Term::str("a\"b")]);
        vec![
            ProvRecord::Edb {
                node: NodeId(3),
                pred: Symbol::intern("r1"),
                tuple: Tuple::new(vec![Term::Int(1)]),
                id: tid(3, 10, 0),
                kind: UpdateKind::Insert,
                tau: 10,
            },
            ProvRecord::Deriv {
                owner: NodeId(5),
                pred,
                tuple: tuple.clone(),
                key: DerivationKey::new(2, vec![(0, tid(3, 10, 0)), (1, tid(7, 20, 1))]),
                sign: -1,
                tau: 20,
                origin: tid(7, 20, 1),
                at: 1_900,
            },
            ProvRecord::Mint {
                owner: NodeId(5),
                pred,
                tuple,
                id: tid(5, 2_000, 4),
                kind: UpdateKind::Delete,
                at: 2_000,
            },
            ProvRecord::Hop {
                from: NodeId(3),
                to: NodeId(4),
                dest: NodeId(5),
                kind: "result",
                origin: tid(7, 20, 1),
                at: 1_850,
            },
        ]
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let p = Provenance::disabled();
        let mut called = false;
        p.record_with(|| {
            called = true;
            sample().remove(0)
        });
        assert!(!called, "closure must not run when disabled");
        assert!(p.is_empty());
        assert!(p.snapshot().is_empty());
        assert_eq!(p.approx_bytes(), 0);
    }

    #[test]
    fn enabled_handle_is_shared_across_clones() {
        let p = Provenance::enabled();
        let q = p.clone();
        p.record_with(|| sample().remove(0));
        assert_eq!(q.len(), 1);
        assert!(q.approx_bytes() > 0);
        let drained = q.take();
        assert_eq!(drained.len(), 1);
        assert!(p.is_empty());
    }

    #[test]
    fn jsonl_round_trip_is_exact() {
        let recs = sample();
        let text = to_jsonl(&recs);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(recs, back);
    }

    #[test]
    fn jsonl_errors_carry_line_numbers() {
        assert!(from_jsonl(r#"{"type":"warp"}"#).is_err());
        let e = from_jsonl("{\"type\":\"edb\",\"node\":1}\n").unwrap_err();
        assert_eq!(e.line, 1);
        let good = to_jsonl(&sample());
        let mut garbled = good.clone();
        garbled.push_str("{\"type\":\"hop\",\"from\":0}\n");
        let e = from_jsonl(&garbled).unwrap_err();
        assert_eq!(e.line, good.lines().count() + 1);
    }

    #[test]
    fn key_and_id_strings_round_trip() {
        let key = DerivationKey::new(usize::MAX, Vec::new());
        assert_eq!(parse_key(&key_str(&key)).unwrap(), key);
        let id = tid(9, u64::MAX, 42);
        assert_eq!(parse_id(&id_str(id)).unwrap(), id);
        assert!(parse_id("nonsense").is_none());
        assert!(parse_key("1:2").is_none());
    }
}
