//! Example 3 of the paper: the XY-stratified shortest-path-tree programs,
//! evaluated *in-network*, against the hand-written flood protocol.
//!
//! `logicH` is the paper's 4-rule program; `logicJ` is the improved variant
//! referenced in Secs. V/VI (the per-edge argument dropped). Both are
//! "more compact than the ~20 lines of procedural code written in Kairos"
//! — here the procedural comparator is `sensorlog_netstack::flood`.
//!
//! ```text
//! cargo run --example spanning_tree
//! ```

use sensorlog::core::workload::graph_edges;
use sensorlog::netstack::flood::run_flood;
use sensorlog::prelude::*;

const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

const LOGIC_J: &str = r#"
    .output j.
    j(0, 0).
    j(X, 1) :- g(0, X).
    jp(Y, D + 1) :- j(Y, D'), (D + 1) > D', j(X, D), g(X, Y).
    j(Y, D + 1) :- g(X, Y), j(X, D), not jp(Y, D + 1).
"#;

fn run(name: &str, src: &str, out_pred: &str, depth_col: (usize, usize)) -> u64 {
    let topo = Topology::square_grid(4);
    let mut d = Deployment::new(
        src,
        BuiltinRegistry::standard(),
        topo.clone(),
        DeployConfig::default(),
    )
    .unwrap();
    // The network's own links, announced by each incident node.
    d.schedule_all(graph_edges(&topo, 100, 200));
    let converged = d.run(200_000_000);
    let results = d.results(Symbol::intern(out_pred));

    println!(
        "\n== {name}: {} tuples, converged at {:.1}s ==",
        results.len(),
        converged as f64 / 1000.0
    );
    for node in topo.nodes() {
        let (x, y) = topo.grid_coords(node).unwrap();
        let want = (x + y) as i64;
        let got: Vec<i64> = results
            .iter()
            .filter(|t| t.get(depth_col.0) == Term::Int(node.0 as i64))
            .map(|t| t.get(depth_col.1).as_i64().unwrap())
            .collect();
        assert!(
            got.iter().all(|&d| d == want) && !got.is_empty(),
            "{name}: node {node} expected depth {want}, got {got:?}"
        );
    }
    println!("   BFS depths verified for all 16 nodes");
    let msgs = d.metrics().total_tx();
    println!("   total messages: {msgs}");
    msgs
}

fn main() {
    println!("shortest-path tree from node 0 on a 4x4 grid, three ways:");

    let h = run("logicH (Example 3, 4 rules)", LOGIC_H, "h", (1, 2));
    let j = run("logicJ (improved, Secs. V/VI)", LOGIC_J, "j", (0, 1));

    let flood = run_flood(&Topology::square_grid(4), NodeId(0), SimConfig::default());
    println!(
        "\n== flood (procedural baseline) ==\n   total messages: {} (converged at {:.2}s)",
        flood.total_messages,
        flood.converged_at as f64 / 1000.0
    );

    println!(
        "\nsummary: logicH {h} msgs  >  logicJ {j} msgs  >  flood {} msgs",
        flood.total_messages
    );
    println!(
        "The deductive programs pay a generality tax over the specialized\n\
         protocol, but are 4 declarative rules instead of a hand-written\n\
         state machine — and logicJ shows how a schema tweak recovers a\n\
         {:.0}% saving over logicH.",
        100.0 * (1.0 - j as f64 / h as f64)
    );
    assert!(j < h, "logicJ must beat logicH");
}
