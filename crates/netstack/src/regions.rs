//! Storage and join-computation regions (Sec. III-A).
//!
//! PA uses the tuple's grid row as the storage region and its column as the
//! join-computation region — every vertical line intersects every
//! horizontal line, the GPA intersection invariant. In general topologies
//! rows/columns generalize to coordinate *bands* whose width guarantees a
//! connected walk (the banded scheme standing in for \[44\]'s construction).
//! Spatial join constraints truncate regions to the constraint radius
//! (Sec. III-A "Function Symbols and Spatial Constraints").

use sensorlog_netsim::{NodeId, Topology, TopologyKind};

/// The ordered list of nodes in `node`'s grid row (left → right). Falls
/// back to a unit-width horizontal band on non-grid topologies rather
/// than panicking.
pub fn grid_row(topo: &Topology, node: NodeId) -> Vec<NodeId> {
    match (topo.grid_coords(node), topo.grid_dims()) {
        (Some((_, y)), Some((cols, _))) => (0..cols).filter_map(|x| topo.node_at(x, y)).collect(),
        _ => horizontal_band(topo, node, 1.0),
    }
}

/// The ordered list of nodes in `node`'s grid column (bottom → top).
/// Falls back to a unit-width vertical band on non-grid topologies.
pub fn grid_col(topo: &Topology, node: NodeId) -> Vec<NodeId> {
    match (topo.grid_coords(node), topo.grid_dims()) {
        (Some((x, _)), Some((_, rows))) => (0..rows).filter_map(|y| topo.node_at(x, y)).collect(),
        _ => vertical_band(topo, node, 1.0),
    }
}

/// Horizontal band: nodes with `|y − y(node)| ≤ width/2`, ordered by x.
/// With `width ≥` the radio radius, consecutive members are mutually
/// reachable through the band (walked via the router).
pub fn horizontal_band(topo: &Topology, node: NodeId, width: f64) -> Vec<NodeId> {
    let (_, y0) = topo.position(node);
    let mut members: Vec<NodeId> = topo
        .nodes()
        .filter(|&n| (topo.position(n).1 - y0).abs() <= width / 2.0)
        .collect();
    members.sort_by(|&a, &b| {
        topo.position(a)
            .0
            .partial_cmp(&topo.position(b).0)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    members
}

/// Vertical band: nodes with `|x − x(node)| ≤ width/2`, ordered by y.
pub fn vertical_band(topo: &Topology, node: NodeId, width: f64) -> Vec<NodeId> {
    let (x0, _) = topo.position(node);
    let mut members: Vec<NodeId> = topo
        .nodes()
        .filter(|&n| (topo.position(n).0 - x0).abs() <= width / 2.0)
        .collect();
    members.sort_by(|&a, &b| {
        topo.position(a)
            .1
            .partial_cmp(&topo.position(b).1)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    members
}

/// Storage region for PA: row on grids, horizontal band elsewhere.
pub fn storage_region(topo: &Topology, node: NodeId, band_width: f64) -> Vec<NodeId> {
    match topo.kind {
        TopologyKind::Grid { .. } => grid_row(topo, node),
        TopologyKind::Geometric { .. } => horizontal_band(topo, node, band_width),
    }
}

/// Join-computation region for PA: column on grids, vertical band elsewhere.
///
/// On geometric topologies the plain vertical band can miss a storage band
/// entirely — when no band member's y-coordinate falls within `width/2` of
/// some node `a`'s, the crossing cell `J(b) ∩ H(a)` is empty and `a`'s
/// tuples silently never meet the join (the Fig. 16 completeness gap, at
/// 0.95–0.99 before this fix). The band is therefore augmented with the
/// \[44\]-style detour rule (see [`augment_with_detours`]), which restores
/// the GPA intersection invariant: every join region intersects every
/// storage region.
pub fn join_region(topo: &Topology, node: NodeId, band_width: f64) -> Vec<NodeId> {
    match topo.kind {
        TopologyKind::Grid { .. } => grid_col(topo, node),
        TopologyKind::Geometric { .. } => {
            let mut band = vertical_band(topo, node, band_width);
            augment_with_detours(topo, node, band_width, &mut band);
            band
        }
    }
}

/// The detour rule: for every node `a` whose horizontal storage band the
/// vertical band misses entirely (no member within `width/2` of `y(a)`),
/// add the storage-band member closest in x to this join region's spine
/// (ties to the smaller id). The walk detours through that member, so
/// `J(b) ∩ H(a) ≠ ∅` holds for *every* `a`: the detour node lies in `H(a)`
/// by construction and is appended to `J(b)`. Each added node also covers
/// every other uncovered node within `width/2` of its own y, so the
/// augmentation stays small (one detour per uncovered y-stratum).
fn augment_with_detours(topo: &Topology, node: NodeId, width: f64, band: &mut Vec<NodeId>) {
    let (x0, _) = topo.position(node);
    let half = width / 2.0;
    let mut extra: Vec<NodeId> = Vec::new();
    for a in topo.nodes() {
        let ya = topo.position(a).1;
        let covered = band
            .iter()
            .chain(extra.iter())
            .any(|&v| (topo.position(v).1 - ya).abs() <= half);
        if covered {
            continue;
        }
        let detour = horizontal_band(topo, a, width)
            .into_iter()
            .min_by(|&u, &v| {
                let du = (topo.position(u).0 - x0).abs();
                let dv = (topo.position(v).0 - x0).abs();
                du.partial_cmp(&dv)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(u.cmp(&v))
            })
            .expect("a node is always in its own storage band");
        extra.push(detour);
    }
    if extra.is_empty() {
        return;
    }
    band.extend(extra);
    // Restore walk order (bottom → top, ids breaking coordinate ties so
    // duplicates are adjacent) and drop duplicates.
    band.sort_by(|&a, &b| {
        topo.position(a)
            .1
            .partial_cmp(&topo.position(b).1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    band.dedup();
}

/// Truncate a region to the nodes within Euclidean `radius` of `center`,
/// preserving order — the spatial-constraint optimization: "store each
/// tuple over only an appropriate part of the horizontal path, and
/// similarly traverse only an appropriate part of the vertical path".
pub fn truncate(topo: &Topology, region: &[NodeId], center: NodeId, radius: f64) -> Vec<NodeId> {
    let (cx, cy) = topo.position(center);
    region
        .iter()
        .copied()
        .filter(|&n| {
            let (x, y) = topo.position(n);
            ((x - cx).powi(2) + (y - cy).powi(2)).sqrt() <= radius
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_cols() {
        let topo = Topology::square_grid(4);
        let n = topo.node_at(2, 1).unwrap();
        let row = grid_row(&topo, n);
        assert_eq!(row.len(), 4);
        assert!(row.iter().all(|&m| topo.grid_coords(m).unwrap().1 == 1));
        let col = grid_col(&topo, n);
        assert_eq!(col.len(), 4);
        assert!(col.iter().all(|&m| topo.grid_coords(m).unwrap().0 == 2));
        // Every row intersects every column (the GPA invariant).
        for y in 0..4 {
            let r = grid_row(&topo, topo.node_at(0, y).unwrap());
            for x in 0..4 {
                let c = grid_col(&topo, topo.node_at(x, 0).unwrap());
                assert!(r.iter().any(|m| c.contains(m)));
            }
        }
    }

    #[test]
    fn bands_cover_and_intersect() {
        let topo = Topology::random_geometric(50, 6.0, 1.8, 3).unwrap();
        let w = 1.8;
        for &a in &[NodeId(0), NodeId(10), NodeId(25)] {
            let h = horizontal_band(&topo, a, w);
            assert!(h.contains(&a));
            for &b in &[NodeId(5), NodeId(30), NodeId(49)] {
                let v = vertical_band(&topo, b, w);
                assert!(v.contains(&b));
                // Bands of sufficient width always intersect in a bounded
                // deployment (the crossing cell is nonempty whp; assert on
                // these seeds).
                assert!(
                    h.iter().any(|m| v.contains(m)),
                    "band intersection empty for {a}/{b}"
                );
            }
        }
    }

    #[test]
    fn geometric_join_regions_meet_every_storage_band() {
        // The Fig. 16 regression: on sparse geometric layouts the plain
        // vertical band can miss a storage band entirely; the detour rule
        // must guarantee a non-empty intersection for EVERY pair.
        for seed in [3u64, 5, 7, 13, 97] {
            let topo = Topology::random_geometric(50, 5.5, 1.7, seed).unwrap();
            let w = 1.7;
            for b in topo.nodes() {
                let j = join_region(&topo, b, w);
                assert!(j.contains(&b), "join region must contain its owner");
                for a in topo.nodes() {
                    let h = storage_region(&topo, a, w);
                    assert!(
                        j.iter().any(|m| h.contains(m)),
                        "seed {seed}: empty intersection J({b}) ∩ H({a})"
                    );
                }
            }
        }
    }

    #[test]
    fn detour_augmented_band_stays_ordered_and_deduped() {
        let topo = Topology::random_geometric(50, 5.5, 1.7, 97).unwrap();
        for b in topo.nodes() {
            let j = join_region(&topo, b, 1.7);
            for w in j.windows(2) {
                assert!(topo.position(w[0]).1 <= topo.position(w[1]).1);
                assert_ne!(w[0], w[1]);
            }
            let mut ids: Vec<NodeId> = j.clone();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), j.len(), "duplicates in join region");
        }
    }

    #[test]
    fn band_ordering() {
        let topo = Topology::random_geometric(30, 5.0, 1.6, 7).unwrap();
        let band = horizontal_band(&topo, NodeId(3), 2.0);
        for w in band.windows(2) {
            assert!(topo.position(w[0]).0 <= topo.position(w[1]).0);
        }
    }

    #[test]
    fn truncation_filters_by_radius() {
        let topo = Topology::square_grid(8);
        let center = topo.node_at(4, 4).unwrap();
        let row = grid_row(&topo, center);
        let t = truncate(&topo, &row, center, 2.0);
        // x ∈ {2..6} at distance ≤ 2 from x=4.
        assert_eq!(t.len(), 5);
        assert!(t.len() < row.len());
        let t0 = truncate(&topo, &row, center, 0.0);
        assert_eq!(t0, vec![center]);
    }

    #[test]
    fn storage_join_dispatch() {
        let grid = Topology::square_grid(4);
        assert_eq!(storage_region(&grid, NodeId(5), 1.0).len(), 4);
        assert_eq!(join_region(&grid, NodeId(5), 1.0).len(), 4);
        let geo = Topology::random_geometric(20, 4.0, 1.6, 5).unwrap();
        assert!(!storage_region(&geo, NodeId(2), 1.6).is_empty());
        assert!(!join_region(&geo, NodeId(2), 1.6).is_empty());
    }
}
