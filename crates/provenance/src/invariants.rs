//! Provenance as an invariant: the deductive results of a run must be
//! *explainable*, not just correct.
//!
//! [`check_provenance`] cross-checks the materialized DAG against the
//! centralized oracle fixpoint (the same oracle the convergence invariants
//! use): every tuple the oracle expects from the surviving EDB must have a
//! well-founded proof whose leaves are live EDB facts, and every result the
//! network actually holds must be supported by the DAG. Violations mean
//! the provenance plane lost records (or the run derived something its own
//! lineage cannot justify) — either way, `explain` output could not be
//! trusted for this run.

use crate::dag::{ProofNode, ProvDag};
use sensorlog_core::{oracle, Deployment, InvariantReport, Strategy, WorkloadEvent};
use sensorlog_logic::{Symbol, Tuple};
use sensorlog_netstack::ght;
use std::collections::BTreeSet;

/// Check that every oracle-expected result tuple has a well-founded proof
/// in the run's provenance DAG, and every held result is DAG-supported.
///
/// Mirrors `check_convergence`'s fault handling: expectations come from
/// the surviving EDB (events whose source node is alive at the end) and
/// are restricted to tuples whose owner is alive.
pub fn check_provenance(d: &Deployment, preds: &[Symbol]) -> InvariantReport {
    let mut report = InvariantReport::default();
    if !d.provenance().is_enabled() {
        report.push(
            None,
            "provenance-enabled",
            "provenance plane is disabled; enable it via DeployConfig::provenance".to_string(),
        );
        return report;
    }
    let dag = ProvDag::build(&d.provenance_records());
    let surviving: Vec<WorkloadEvent> = d
        .applied_events()
        .iter()
        .filter(|e| !d.sim.is_failed(e.node))
        .cloned()
        .collect();
    for &pred in preds {
        let expected: BTreeSet<Tuple> = oracle::expected_results(d, &surviving, pred)
            .into_iter()
            .filter(|t| {
                let owner = match d.strategy {
                    Strategy::Centroid => Strategy::center(d.sim.topology()),
                    _ => ght::owner_of(d.sim.topology(), pred, t),
                };
                !d.sim.is_failed(owner)
            })
            .collect();
        for t in &expected {
            match dag.why(pred, t) {
                Some(proof) => check_well_founded(&proof, &mut report),
                None => report.push(
                    None,
                    "provenance-missing",
                    format!("{pred}{t} expected by the oracle but has no proof in the DAG"),
                ),
            }
        }
        for t in d.results(pred) {
            if dag.why(pred, &t).is_none() {
                report.push(
                    None,
                    "provenance-unsupported",
                    format!("{pred}{t} held by the network but unsupported by the DAG"),
                );
            }
        }
    }
    report
}

/// Every leaf of the proof must be an EDB fact, and no atom may appear
/// twice on a root-to-leaf path (well-foundedness is by construction —
/// this is the belt-and-suspenders check the invariant promises).
fn check_well_founded(proof: &ProofNode, report: &mut InvariantReport) {
    let mut path: Vec<(Symbol, Tuple)> = Vec::new();
    walk(proof, &mut path, report);
}

fn walk(node: &ProofNode, path: &mut Vec<(Symbol, Tuple)>, report: &mut InvariantReport) {
    let key = (node.pred, node.tuple.clone());
    if path.contains(&key) {
        report.push(
            None,
            "provenance-cycle",
            format!(
                "{}{} appears twice on its own proof path",
                node.pred, node.tuple
            ),
        );
        return;
    }
    if node.premises.is_empty() {
        if let Some(rule_id) = node.rule_id {
            report.push(
                None,
                "provenance-leaf",
                format!(
                    "{}{} is a proof leaf but was derived by rule {} (not an EDB fact)",
                    node.pred, node.tuple, rule_id
                ),
            );
        }
    }
    path.push(key);
    for edge in &node.premises {
        walk(&edge.premise, path, report);
    }
    path.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::Explain;
    use sensorlog_core::DeployConfig;
    use sensorlog_core::Provenance;
    use sensorlog_eval::UpdateKind;
    use sensorlog_logic::builtin::BuiltinRegistry;
    use sensorlog_logic::{Term, Tuple};
    use sensorlog_netsim::Topology;

    fn join_deployment() -> (Deployment, Vec<WorkloadEvent>) {
        let src = r#"
            .output q.
            q(X, Y) :- r1(X, T), r2(Y, T).
        "#;
        let topo = Topology::square_grid(4);
        let cfg = DeployConfig {
            provenance: Provenance::enabled(),
            ..DeployConfig::default()
        };
        let mut d = Deployment::new(src, BuiltinRegistry::standard(), topo, cfg).unwrap();
        let ev = |at, node: u32, pred: &str, args: Vec<i64>| WorkloadEvent {
            at,
            node: sensorlog_netsim::NodeId(node),
            pred: Symbol::intern(pred),
            tuple: Tuple::new(args.into_iter().map(Term::Int).collect::<Vec<_>>()),
            kind: UpdateKind::Insert,
        };
        let events = vec![ev(10, 0, "r1", vec![1, 7]), ev(20, 15, "r2", vec![2, 7])];
        d.schedule_all(events.clone());
        d.run(60_000);
        (d, events)
    }

    #[test]
    fn real_run_passes_the_provenance_invariant() {
        let (d, _events) = join_deployment();
        let q = Symbol::intern("q");
        assert_eq!(d.results(q).len(), 1, "join derives q(1,2)");
        let report = check_provenance(&d, &[q]);
        assert!(report.ok(), "violations: {:?}", report.violations);
        // And the explanation is a real cross-node proof.
        let t = Tuple::new(vec![Term::Int(1), Term::Int(2)]);
        let ex = d.explain(q, &t);
        assert!(ex.is_proof(), "explain: {}", ex.text());
        assert!(ex.text().contains("critical path"), "{}", ex.text());
        // Absent tuple gets a why-not verdict.
        let absent = Tuple::new(vec![Term::Int(9), Term::Int(9)]);
        let ex = d.explain(q, &absent);
        assert!(!ex.is_proof());
    }

    #[test]
    fn disabled_plane_is_reported() {
        let src = ".output q.\nq(X, Y) :- r1(X, T), r2(Y, T).";
        let d = Deployment::new(
            src,
            BuiltinRegistry::standard(),
            Topology::square_grid(3),
            DeployConfig::default(),
        )
        .unwrap();
        let report = check_provenance(&d, &[Symbol::intern("q")]);
        assert!(!report.ok());
        assert_eq!(report.violations[0].invariant, "provenance-enabled");
    }
}
