//! Data-gathering spanning tree (the substrate for TAG-style aggregation,
//! Sec. IV-C "We can use specialized distributed techniques such as TAG").
//!
//! A BFS tree rooted at the sink. [`GatherTree`] is the precomputed
//! structure; [`build_distributed`] runs the classic beacon-flood protocol
//! on the simulator and reports its message cost (it must agree with the
//! precomputed tree on hop counts).

use sensorlog_netsim::{App, Ctx, MsgMeta, NodeId, SimConfig, Simulator, Topology};
use sensorlog_telemetry::Telemetry;
use std::collections::VecDeque;

/// A rooted spanning tree: parent pointers + depth per node.
#[derive(Clone, Debug)]
pub struct GatherTree {
    pub root: NodeId,
    pub parent: Vec<Option<NodeId>>,
    pub depth: Vec<u32>,
}

impl GatherTree {
    /// BFS tree from `root`.
    pub fn bfs(topo: &Topology, root: NodeId) -> GatherTree {
        let mut parent = vec![None; topo.len()];
        let mut depth = vec![u32::MAX; topo.len()];
        depth[root.index()] = 0;
        let mut q = VecDeque::from([root]);
        while let Some(v) = q.pop_front() {
            for &w in topo.neighbors(v) {
                if depth[w.index()] == u32::MAX {
                    depth[w.index()] = depth[v.index()] + 1;
                    parent[w.index()] = Some(v);
                    q.push_back(w);
                }
            }
        }
        GatherTree {
            root,
            parent,
            depth,
        }
    }

    /// Children of a node.
    pub fn children(&self, n: NodeId) -> Vec<NodeId> {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == Some(n))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.children(n).is_empty()
    }

    pub fn max_depth(&self) -> u32 {
        self.depth
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }
}

/// Beacon message of the distributed tree protocol.
#[derive(Clone, Debug)]
pub struct Beacon {
    pub depth: u32,
}

impl MsgMeta for Beacon {
    fn size_bytes(&self) -> usize {
        4
    }
    fn kind(&self) -> &'static str {
        "beacon"
    }
}

/// Node state of the distributed tree protocol.
pub struct TreeNode {
    pub id: NodeId,
    pub root: NodeId,
    pub parent: Option<NodeId>,
    pub depth: Option<u32>,
}

impl App for TreeNode {
    type Msg = Beacon;

    fn on_start(&mut self, ctx: &mut Ctx<Beacon>) {
        if self.id == self.root {
            self.depth = Some(0);
            ctx.broadcast(Beacon { depth: 0 });
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Beacon>, from: NodeId, msg: Beacon) {
        let new_depth = msg.depth + 1;
        if self.depth.is_none_or(|d| new_depth < d) {
            self.depth = Some(new_depth);
            self.parent = Some(from);
            ctx.broadcast(Beacon { depth: new_depth });
        }
    }
}

/// Run the distributed tree construction; returns (tree, message count).
pub fn build_distributed(topo: &Topology, root: NodeId, config: SimConfig) -> (GatherTree, u64) {
    build_distributed_with(topo, root, config, Telemetry::disabled())
}

/// [`build_distributed`] with a telemetry handle: beacon traffic lands in
/// the shared registry and the protocol run is timed as `tree.build`.
pub fn build_distributed_with(
    topo: &Topology,
    root: NodeId,
    config: SimConfig,
    tele: Telemetry,
) -> (GatherTree, u64) {
    let _span = tele.span("tree.build");
    let mut sim = Simulator::new(topo.clone(), config, move |id, _| TreeNode {
        id,
        root,
        parent: None,
        depth: None,
    });
    sim.set_telemetry(tele.clone());
    let converged_at = sim.run_to_quiescence(10_000_000);
    tele.record_sim("tree.build", converged_at);
    let mut parent = vec![None; topo.len()];
    let mut depth = vec![u32::MAX; topo.len()];
    for id in topo.nodes() {
        let n = sim.node(id);
        parent[id.index()] = n.parent;
        depth[id.index()] = n.depth.unwrap_or(u32::MAX);
    }
    (
        GatherTree {
            root,
            parent,
            depth,
        },
        sim.metrics.total_tx(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_tree_depths() {
        let topo = Topology::square_grid(5);
        let t = GatherTree::bfs(&topo, NodeId(0));
        // Depth = Manhattan distance from corner.
        for id in topo.nodes() {
            let (x, y) = topo.grid_coords(id).unwrap();
            assert_eq!(t.depth[id.index()], x + y);
        }
        assert_eq!(t.max_depth(), 8);
        assert!(t.parent[0].is_none());
    }

    #[test]
    fn children_partition() {
        let topo = Topology::square_grid(4);
        let t = GatherTree::bfs(&topo, NodeId(0));
        let mut count = 0;
        for id in topo.nodes() {
            count += t.children(id).len();
        }
        assert_eq!(count, topo.len() - 1); // every non-root has one parent
    }

    #[test]
    fn distributed_matches_bfs_depths() {
        let topo = Topology::square_grid(4);
        let (tree, msgs) = build_distributed(&topo, NodeId(0), SimConfig::default());
        let oracle = GatherTree::bfs(&topo, NodeId(0));
        assert_eq!(tree.depth, oracle.depth);
        assert!(msgs > 0);
    }

    #[test]
    fn distributed_on_geometric() {
        let topo = Topology::random_geometric(30, 5.0, 1.7, 9).unwrap();
        let (tree, _) = build_distributed(&topo, NodeId(0), SimConfig::default());
        for id in topo.nodes() {
            assert!(tree.depth[id.index()] != u32::MAX, "{id} unreached");
        }
    }
}
