//! Interned-tuple / trie-index microbenchmarks, exported as
//! `BENCH_intern.json`.
//!
//! ```text
//! intern [--quick] [--out BENCH_intern.json]
//! ```
//!
//! Three checks, matching what the flat-representation work changed:
//!
//! * **journal pin** — the 50-node logicH deployment that anchors the
//!   provenance smoke, re-run here and compared against the pre-refactor
//!   journal hash: the id representation must be invisible on the wire
//!   and in the trace.
//! * **resolve gate** — `intern::resolve_counts()` deltas across a
//!   centralized `Engine` fixpoint and across the deployment run. Every
//!   boxed-`Term` materialization is supposed to happen inside a declared
//!   `intern::boundary` scope (display, lineage, aggregate folds, builtin
//!   calls, message encode); a hot-path delta of anything but zero means
//!   a resolve leaked into the fixpoint loop.
//! * **probe** — join-probe throughput on logicH / logicJ shaped
//!   relations at 1k / 10k nodes: the trie probe + flat id matcher
//!   against an in-bench replica of the PR 3 path (per-signature
//!   `HashMap<Vec<Term>, Vec<Tuple>>` postings + boxed `sem_match_args`).
//!   The replica is built on boxed terms exactly as the old `IndexStore`
//!   stored them, so the ratio isolates the representation change.
//!
//! `--quick` runs the pin + gate only (the CI smoke); the committed
//! `BENCH_intern.json` comes from a full run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensorlog_core::deploy::{DeployConfig, Deployment};
use sensorlog_core::workload::graph_edges;
use sensorlog_core::{RtConfig, Strategy};
use sensorlog_eval::eval_body::sem_match_args;
use sensorlog_eval::relation::{Relation, TupleMeta};
use sensorlog_eval::{Database, Engine};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::flat::{flat_eval, flat_is_ground, flat_match_args, FlatSubst};
use sensorlog_logic::intern;
use sensorlog_logic::parser::parse_term;
use sensorlog_logic::unify::Subst;
use sensorlog_logic::{Symbol, Term, Tuple};
use sensorlog_netsim::{SimConfig, Topology};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

/// Pre-refactor pin of the 50-node quick deployment journal (the same
/// scenario and hash the provenance smoke pins in `ci.sh`).
const JOURNAL_PIN: u64 = 0x3c1e_c08c_6289_dba4;

// ------------------------------------------------------------------ pin

struct PinRun {
    hash: u64,
    records: usize,
    hot_delta: u64,
    boundary_delta: u64,
}

/// The provenance-smoke scenario: loss-free logicH shortest-path tree on
/// a 10×5 grid, seed 17 — with resolve counters sampled around the run.
fn run_pin() -> PinRun {
    let topo = Topology::grid(10, 5);
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig {
            seed: 17,
            ..SimConfig::default()
        },
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(LOGIC_H, BuiltinRegistry::standard(), topo.clone(), cfg)
        .expect("bench program compiles");
    let journal = d.attach_journal();
    d.schedule_all(graph_edges(&topo, 100, 200));
    let before = intern::resolve_counts();
    d.run(2_000_000);
    let after = intern::resolve_counts();
    let j = journal.take();
    PinRun {
        hash: j.content_hash(),
        records: j.records.len(),
        hot_delta: after.hot - before.hot,
        boundary_delta: after.boundary - before.boundary,
    }
}

/// Centralized semi-naive fixpoint of logicH on an 8×8 grid: the hot loop
/// with no display/wire boundary at all, so even the boundary delta stays
/// small and the hot delta must be exactly zero.
fn run_engine_gate() -> (u64, u64) {
    let topo = Topology::square_grid(8);
    let mut edb = Database::new();
    let g = Symbol::intern("g");
    for a in topo.nodes() {
        for &b in topo.neighbors(a) {
            edb.insert(
                g,
                Tuple::new(vec![Term::Int(a.0 as i64), Term::Int(b.0 as i64)]),
            );
        }
    }
    let engine =
        Engine::from_source(LOGIC_H, BuiltinRegistry::standard()).expect("program compiles");
    let before = intern::resolve_counts();
    let out = engine.run(&edb).expect("program evaluates");
    let after = intern::resolve_counts();
    assert!(
        out.len_of(Symbol::intern("h")) > 0,
        "fixpoint produced no h"
    );
    (after.hot - before.hot, after.boundary - before.boundary)
}

// ---------------------------------------------------------------- probe

/// In-bench replica of the PR 3 probe path: the per-signature hash
/// `IndexStore` kept `HashMap<Vec<Term>, Vec<Tuple>>` postings with
/// `Arc<[Term]>`-backed tuples, and `select` cloned the postings into the
/// caller's sink exactly like the trie path does today.
struct BoxedIndex {
    cols: Vec<usize>,
    map: HashMap<Vec<Term>, Vec<std::sync::Arc<[Term]>>>,
}

impl BoxedIndex {
    fn build(tuples: &[std::sync::Arc<[Term]>], cols: &[usize]) -> Self {
        let mut map: HashMap<Vec<Term>, Vec<std::sync::Arc<[Term]>>> = HashMap::new();
        for t in tuples {
            let key: Vec<Term> = cols.iter().map(|&c| t[c].clone()).collect();
            map.entry(key).or_default().push(t.clone());
        }
        BoxedIndex {
            cols: cols.to_vec(),
            map,
        }
    }

    fn select(&self, key: &[Term], out: &mut Vec<std::sync::Arc<[Term]>>) {
        debug_assert_eq!(key.len(), self.cols.len());
        if let Some(postings) = self.map.get(key) {
            out.extend(postings.iter().cloned());
        }
    }
}

/// One probe workload: a relation, the bound-column signature the join
/// planner would derive, and the atom argument pattern the matcher binds.
struct Pattern {
    rel: Relation,
    boxed: Vec<std::sync::Arc<[Term]>>,
    cols: Vec<usize>,
    args: Vec<Term>,
}

struct ProbeRow {
    program: &'static str,
    nodes: usize,
    flat_ops_per_sec: f64,
    boxed_ops_per_sec: f64,
    speedup: f64,
    bindings: u64,
}

fn pattern(tuples: Vec<Tuple>, cols: Vec<usize>, args: &[&str]) -> Pattern {
    let mut rel = Relation::new();
    rel.register_index(&cols);
    let boxed: Vec<std::sync::Arc<[Term]>> =
        intern::boundary(|| tuples.iter().map(|t| t.terms().into()).collect());
    for t in tuples {
        rel.insert(t, TupleMeta::default());
    }
    let args: Vec<Term> = args
        .iter()
        .map(|s| parse_term(s).expect("pattern term parses"))
        .collect();
    Pattern {
        rel,
        boxed,
        cols,
        args,
    }
}

/// BFS shortest-path tree over the grid: the converged contents of
/// logicH's `h(Parent, Node, Depth)` and logicJ's `j(Node, Depth)`.
fn tree(topo: &Topology) -> Vec<(i64, i64, i64)> {
    let n = topo.nodes().count();
    let mut depth = vec![i64::MAX; n];
    let mut parent = vec![0i64; n];
    let mut queue = std::collections::VecDeque::new();
    depth[0] = 0;
    queue.push_back(0usize);
    let mut out = vec![(0i64, 0i64, 0i64)];
    while let Some(a) = queue.pop_front() {
        for &b in topo.neighbors(sensorlog_netsim::NodeId(a as u32)) {
            let b = b.0 as usize;
            if depth[b] == i64::MAX {
                depth[b] = depth[a] + 1;
                parent[b] = a as i64;
                out.push((a as i64, b as i64, depth[b]));
                queue.push_back(b);
            }
        }
    }
    out
}

/// Probe throughput for one program shape at one scale. Each "op" is one
/// full hot-loop iteration as the join walk runs it: compute the bound
/// columns and probe key from the carried substitution, probe the index,
/// then clone the substitution and bind every matching tuple through the
/// matcher — the flat/trie path vs the boxed PR 3 replica (`Subst` was a
/// `HashMap<Symbol, Term>`, cloned per candidate, with `apply`-based
/// matching), on identical key streams.
fn bench_probe(program: &'static str, m: u32, probes: usize) -> ProbeRow {
    let topo = Topology::square_grid(m);
    let nodes = topo.nodes().count();
    let g_tuples: Vec<Tuple> = topo
        .nodes()
        .flat_map(|a| {
            topo.neighbors(a)
                .iter()
                .map(move |&b| Tuple::new(vec![Term::Int(a.0 as i64), Term::Int(b.0 as i64)]))
        })
        .collect();
    let spt = tree(&topo);

    // The recursive rule's inner loop: probe g by source, then the tree
    // relation by the column the planner binds (logicH: h(_, X, D) keyed
    // on column 1; logicJ: j(X, D) keyed on column 0).
    let mut pats = vec![pattern(g_tuples, vec![0], &["X", "Y"])];
    if program == "logicH" {
        let h_tuples: Vec<Tuple> = spt
            .iter()
            .map(|&(p, n, d)| Tuple::new(vec![Term::Int(p), Term::Int(n), Term::Int(d)]))
            .collect();
        pats.push(pattern(h_tuples, vec![1], &["W", "X", "D"]));
    } else {
        let j_tuples: Vec<Tuple> = spt
            .iter()
            .map(|&(_, n, d)| Tuple::new(vec![Term::Int(n), Term::Int(d)]))
            .collect();
        pats.push(pattern(j_tuples, vec![0], &["X", "D"]));
    }

    let reg = BuiltinRegistry::standard();
    let x = Symbol::intern("X");
    // A carried binding that never participates in the probe — real rule
    // walks arrive at each literal with earlier bindings in tow, and the
    // per-candidate substitution clone pays for all of them.
    let z = Symbol::intern("Zctx");

    // Warm the tries to steady state: probe every key once, untimed, so
    // the timed section measures the maintained index at temperature. This
    // is the fixpoint loop's regime — the same keys are re-probed across
    // rules and iterations — and is applied identically to both paths.
    let mut out = Vec::new();
    let mut cols: Vec<usize> = Vec::new();
    let mut key: Vec<sensorlog_logic::ConstId> = Vec::new();
    for k in 0..nodes as i64 {
        let mut ctx = FlatSubst::new();
        ctx.bind(x, intern::intern_int(k));
        ctx.bind(z, intern::intern_int(7));
        for p in &pats {
            cols.clear();
            key.clear();
            for (i, a) in p.args.iter().enumerate() {
                if flat_is_ground(a, &ctx) {
                    if let Ok(v) = flat_eval(&reg, a, &ctx) {
                        cols.push(i);
                        key.push(v);
                    }
                }
            }
            out.clear();
            p.rel.select(&cols, &key, &mut out);
        }
    }
    let boxed_idx: Vec<BoxedIndex> = pats
        .iter()
        .map(|p| BoxedIndex::build(&p.boxed, &p.cols))
        .collect();
    // Same full-key warm pass for the PR 3 replica.
    let mut warm_out: Vec<std::sync::Arc<[Term]>> = Vec::new();
    for k in 0..nodes as i64 {
        let mut ctx = Subst::new();
        ctx.bind(x, Term::Int(k));
        ctx.bind(z, Term::Int(7));
        for (p, idx) in pats.iter().zip(&boxed_idx) {
            let mut key: Vec<Term> = Vec::new();
            for a in &p.args {
                let g = ctx.apply(a);
                if g.is_ground() {
                    if let Ok(v) = reg.eval_term(&g) {
                        key.push(v);
                    }
                }
            }
            warm_out.clear();
            idx.select(&key, &mut warm_out);
        }
    }

    // Interleave repetitions of both timed loops and keep the best run of
    // each: on a shared machine a single timing is hostage to whatever else
    // is scheduled, and min-of-N on identical work converges to the actual
    // cost. Identical seeds per rep keep the key streams — and therefore
    // the binding counts — reproducible.
    const REPS: usize = 3;
    let mut flat_best = f64::INFINITY;
    let mut boxed_best = f64::INFINITY;
    let mut bindings = 0u64;
    for _ in 0..REPS {
        let mut rng = StdRng::seed_from_u64(0x1247e4 + m as u64);
        let mut flat_bindings = 0u64;
        let t0 = Instant::now();
        for _ in 0..probes {
            let n = rng.gen_range(0..nodes as i64);
            let mut ctx = FlatSubst::new();
            ctx.bind(x, intern::intern_int(n));
            ctx.bind(z, intern::intern_int(7));
            for p in &pats {
                cols.clear();
                key.clear();
                for (i, a) in p.args.iter().enumerate() {
                    if flat_is_ground(a, &ctx) {
                        if let Ok(v) = flat_eval(&reg, a, &ctx) {
                            cols.push(i);
                            key.push(v);
                        }
                    }
                }
                out.clear();
                p.rel.select(&cols, &key, &mut out);
                for t in &out {
                    let mut s = ctx.clone();
                    if flat_match_args(&reg, &p.args, t.ids(), &mut s) {
                        flat_bindings += 1;
                    }
                }
            }
        }
        flat_best = flat_best.min(t0.elapsed().as_secs_f64());

        let mut rng = StdRng::seed_from_u64(0x1247e4 + m as u64);
        let mut boxed_bindings = 0u64;
        let mut boxed_out: Vec<std::sync::Arc<[Term]>> = Vec::new();
        let t0 = Instant::now();
        for _ in 0..probes {
            let n = rng.gen_range(0..nodes as i64);
            let mut ctx = Subst::new();
            ctx.bind(x, Term::Int(n));
            ctx.bind(z, Term::Int(7));
            for (p, idx) in pats.iter().zip(&boxed_idx) {
                let mut bkey: Vec<Term> = Vec::new();
                for a in &p.args {
                    let g = ctx.apply(a);
                    if g.is_ground() {
                        if let Ok(v) = reg.eval_term(&g) {
                            bkey.push(v);
                        }
                    }
                }
                boxed_out.clear();
                idx.select(&bkey, &mut boxed_out);
                for t in &boxed_out {
                    let mut s = ctx.clone();
                    if sem_match_args(&reg, &p.args, t, &mut s) {
                        boxed_bindings += 1;
                    }
                }
            }
        }
        boxed_best = boxed_best.min(t0.elapsed().as_secs_f64());
        assert_eq!(
            flat_bindings, boxed_bindings,
            "flat and boxed probe paths disagree on {program} at {nodes} nodes"
        );
        bindings = flat_bindings;
    }
    let flat_ops = probes as f64 / flat_best;
    let boxed_ops = probes as f64 / boxed_best;

    ProbeRow {
        program,
        nodes,
        flat_ops_per_sec: flat_ops,
        boxed_ops_per_sec: boxed_ops,
        speedup: flat_ops / boxed_ops,
        bindings,
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_intern.json".into());

    let (engine_hot, engine_boundary) = run_engine_gate();
    eprintln!("engine gate: hot resolves {engine_hot}, boundary {engine_boundary}");
    if engine_hot != 0 {
        eprintln!("intern: {engine_hot} resolve() calls leaked into the centralized fixpoint");
        return ExitCode::FAILURE;
    }

    let pin = run_pin();
    eprintln!(
        "pin run: hash {:016x}, {} records, hot resolves {}, boundary {}",
        pin.hash, pin.records, pin.hot_delta, pin.boundary_delta
    );
    if pin.hash != JOURNAL_PIN {
        eprintln!(
            "intern: journal hash {:016x} drifted from the pre-refactor pin {JOURNAL_PIN:016x} \
             (the flat representation is supposed to be invisible on the wire)",
            pin.hash
        );
        return ExitCode::FAILURE;
    }
    if pin.hot_delta != 0 {
        eprintln!(
            "intern: {} resolve() calls leaked outside boundary scopes during the deployment run",
            pin.hot_delta
        );
        return ExitCode::FAILURE;
    }

    let rows: Vec<ProbeRow> = if quick {
        Vec::new()
    } else {
        // 32² = 1024 ≈ 1k nodes, 100² = 10k nodes.
        let mut rows = Vec::new();
        for program in ["logicH", "logicJ"] {
            for (m, probes) in [(32u32, 200_000usize), (100, 50_000)] {
                let row = bench_probe(program, m, probes);
                eprintln!(
                    "{}: {} nodes, flat {:.0} ops/s, boxed {:.0} ops/s, {:.2}x",
                    row.program,
                    row.nodes,
                    row.flat_ops_per_sec,
                    row.boxed_ops_per_sec,
                    row.speedup
                );
                rows.push(row);
            }
        }
        rows
    };

    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"intern\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!(
        "  \"journal\": {{\"hash\": \"{:016x}\", \"records\": {}, \"matches_pre_refactor_pin\": true}},\n",
        pin.hash, pin.records
    ));
    s.push_str(&format!(
        "  \"resolves\": {{\"engine_hot\": {engine_hot}, \"engine_boundary\": {engine_boundary}, \
         \"deploy_hot\": {}, \"deploy_boundary\": {}}},\n",
        pin.hot_delta, pin.boundary_delta
    ));
    s.push_str("  \"probe\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"program\": \"{}\", \"nodes\": {}, \"flat_ops_per_sec\": {:.0}, \
             \"boxed_ops_per_sec\": {:.0}, \"speedup\": {:.2}, \"bindings\": {}}}",
            r.program, r.nodes, r.flat_ops_per_sec, r.boxed_ops_per_sec, r.speedup, r.bindings
        ));
    }
    if !rows.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");

    std::fs::write(&out_path, &s).expect("write bench artifact");
    if !quick {
        let min = rows.iter().map(|r| r.speedup).fold(f64::MAX, f64::min);
        eprintln!("intern OK: min speedup {min:.2}x -> {out_path}");
        if min < 2.0 {
            eprintln!("intern: speedup below the 2x acceptance floor");
            return ExitCode::FAILURE;
        }
    } else {
        eprintln!("intern OK (quick): pin + resolve gate -> {out_path}");
    }
    ExitCode::SUCCESS
}
