//! Evaluation errors and resource-limit diagnostics.

use sensorlog_logic::{AnalyzeError, BuiltinError, Symbol};
use std::fmt;

/// Errors surfaced by the engines.
#[derive(Clone, Debug)]
pub enum EvalError {
    /// A builtin failed (division by zero, type mismatch, …).
    Builtin(BuiltinError),
    /// Program analysis failed.
    Analyze(AnalyzeError),
    /// A resource guard tripped — usually runaway recursion through
    /// function symbols ("introduction of function symbols … may result in
    /// non-termination", Sec. IV-C).
    LimitExceeded { what: &'static str, limit: usize },
    /// The runtime derivation-cycle check for locally non-recursive
    /// evaluation found a cycle: the program is outside the supported class
    /// (Sec. IV-C, "Evaluating General Recursive Programs").
    DerivationCycle { pred: Symbol },
    /// A body variable was unbound where groundness was required; indicates
    /// an internal planning bug (safety checking should prevent it).
    Internal(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Builtin(e) => write!(f, "{e}"),
            EvalError::Analyze(e) => write!(f, "{e}"),
            EvalError::LimitExceeded { what, limit } => {
                write!(f, "evaluation limit exceeded: {what} > {limit}")
            }
            EvalError::DerivationCycle { pred } => write!(
                f,
                "derivation cycle through predicate {pred}: program is not locally non-recursive"
            ),
            EvalError::Internal(s) => write!(f, "internal evaluation error: {s}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<BuiltinError> for EvalError {
    fn from(e: BuiltinError) -> Self {
        EvalError::Builtin(e)
    }
}

impl From<AnalyzeError> for EvalError {
    fn from(e: AnalyzeError) -> Self {
        EvalError::Analyze(e)
    }
}
