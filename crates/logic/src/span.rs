//! Byte-offset source spans for diagnostics.
//!
//! Spans are *metadata*, not semantics: two rules that differ only in their
//! spans are the same rule. [`Span`] therefore implements an always-true
//! `PartialEq` and a no-op `Hash`, so threading spans through [`crate::ast`]
//! does not disturb structural equality (display→reparse round-trips,
//! memoization keys, test fixtures built without source text).

use std::fmt;
use std::hash::{Hash, Hasher};

/// A half-open byte range `[start, end)` into the program source, plus the
/// 1-based line/column of `start` so errors can print `line:col` without
/// re-scanning the source. A default span (all zeros) means "no source
/// location" — synthetic rules (magic rewrites, test fixtures) carry it.
#[derive(Copy, Clone, Eq, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based source line of `start`; 0 = unknown.
    pub line: u32,
    /// 1-based source column of `start`; 0 = unknown.
    pub col: u32,
}

impl Span {
    pub fn new(start: u32, end: u32, line: u32, col: u32) -> Span {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// True when this span carries a real source location.
    pub fn is_known(&self) -> bool {
        self.line != 0
    }

    /// Smallest span covering both `self` and `other` (position metadata is
    /// taken from the earlier span).
    pub fn cover(self, other: Span) -> Span {
        if !self.is_known() {
            return other;
        }
        if !other.is_known() {
            return self;
        }
        let (first, last) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: first.start,
            end: first.end.max(last.end),
            line: first.line,
            col: first.col,
        }
    }
}

// Spans never participate in structural equality (see module docs).
impl PartialEq for Span {
    fn eq(&self, _other: &Span) -> bool {
        true
    }
}

impl Hash for Span {
    fn hash<H: Hasher>(&self, _state: &mut H) {}
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            write!(f, "?:?")
        }
    }
}

/// Source spans of one rule: the whole rule, its head atom, and one span
/// per body literal (parallel to `Rule::body`; may be empty for synthetic
/// rules — consumers must index with `.get`).
#[derive(Clone, Eq, Debug, Default)]
pub struct RuleSpans {
    pub rule: Span,
    pub head: Span,
    pub lits: Vec<Span>,
}

// Like `Span`: pure metadata, never part of structural equality (a parsed
// rule must equal the same rule built programmatically without spans).
impl PartialEq for RuleSpans {
    fn eq(&self, _other: &RuleSpans) -> bool {
        true
    }
}

impl Hash for RuleSpans {
    fn hash<H: Hasher>(&self, _state: &mut H) {}
}

impl RuleSpans {
    /// Span of body literal `i`, falling back to the rule span.
    pub fn lit(&self, i: usize) -> Span {
        self.lits.get(i).copied().unwrap_or(self.rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_always_equal() {
        let a = Span::new(0, 5, 1, 1);
        let b = Span::new(100, 200, 7, 3);
        assert_eq!(a, b, "spans are metadata, never semantic");
        assert_eq!(
            RuleSpans::default(),
            RuleSpans {
                rule: a,
                head: b,
                lits: vec![a],
            }
        );
    }

    #[test]
    fn cover_prefers_known_spans() {
        let unknown = Span::default();
        let known = Span::new(4, 9, 2, 1);
        assert!(unknown.cover(known).is_known());
        assert!(known.cover(unknown).is_known());
        let later = Span::new(12, 20, 3, 1);
        let c = known.cover(later);
        assert_eq!((c.start, c.end, c.line, c.col), (4, 20, 2, 1));
        let c2 = later.cover(known);
        assert_eq!((c2.start, c2.end), (4, 20));
    }

    #[test]
    fn display_line_col() {
        assert_eq!(Span::new(3, 8, 2, 4).to_string(), "2:4");
        assert_eq!(Span::default().to_string(), "?:?");
    }
}
