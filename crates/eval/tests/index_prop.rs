//! Property test: incremental index maintenance is equivalent to rebuild.
//!
//! After every random batch of inserts and deletes, the contents of a
//! maintained index (built once, updated through `insert`/`remove`) must
//! equal an index built from scratch on a fresh clone of the same tuples —
//! same keys, same postings, same (canonical) posting order. This is the
//! invariant that lets `Relation::select` serve probes from a long-lived
//! index without ever re-scanning.

use proptest::collection::vec;
use proptest::prelude::*;
use sensorlog_eval::relation::{Relation, TupleMeta};
use sensorlog_logic::{Term, Tuple};

fn tup(a: i64, b: i64, c: i64) -> Tuple {
    Tuple::new(vec![Term::Int(a), Term::Int(b), Term::Int(c)])
}

/// One random mutation: insert (true) or delete (false) of a small tuple.
fn op() -> impl Strategy<Value = (bool, i64, i64, i64)> {
    (any::<bool>(), 0i64..6, 0i64..6, 0i64..6)
}

/// Rebuild-from-scratch reference: clone drops built indexes but keeps the
/// registration, so the first probe rebuilds from current tuples only.
fn fresh_contents(r: &Relation, cols: &[usize]) -> Vec<(Vec<Term>, Vec<Tuple>)> {
    let f = r.clone();
    let mut sink = Vec::new();
    // Probe with a key that may or may not exist — the probe forces the
    // build; contents are read back independently of the key.
    f.select(cols, &[Term::Int(0)], &mut sink);
    f.index_contents(cols)
        .expect("registered index builds on first probe")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn maintained_index_equals_fresh_rebuild(batches in vec(vec(op(), 1..20), 1..8)) {
        let mut r = Relation::new();
        r.register_index(&[0]);
        r.register_index(&[1, 2]);
        // Force both indexes to exist before any mutation.
        let mut sink = Vec::new();
        r.select(&[0], &[Term::Int(0)], &mut sink);
        r.select(&[1, 2], &[Term::Int(0), Term::Int(0)], &mut sink);

        for batch in &batches {
            for &(ins, a, b, c) in batch {
                if ins {
                    r.insert(tup(a, b, c), TupleMeta::default());
                } else {
                    r.remove(&tup(a, b, c));
                }
            }
            for cols in [&[0usize][..], &[1usize, 2][..]] {
                let maintained = r.index_contents(cols)
                    .expect("maintained index stays built across mutations");
                let rebuilt = fresh_contents(&r, cols);
                prop_assert_eq!(maintained, rebuilt);
            }
        }
    }

    #[test]
    fn probe_results_match_scan(ops in vec(op(), 0..60), key in 0i64..6) {
        let mut r = Relation::new();
        r.register_index(&[1]);
        for &(ins, a, b, c) in &ops {
            if ins {
                r.insert(tup(a, b, c), TupleMeta::default());
            } else {
                r.remove(&tup(a, b, c));
            }
        }
        let mut probed = Vec::new();
        r.select(&[1], &[Term::Int(key)], &mut probed);
        let scanned: Vec<Tuple> = r
            .tuples()
            .filter(|t| t.get(1) == &Term::Int(key))
            .cloned()
            .collect();
        prop_assert_eq!(probed, scanned, "index probe must equal filtered scan");
    }
}
