//! The `sensorlog` command-line interface.
//!
//! ```text
//! sensorlog analyze <program.dl>
//!     Parse + classify: safety, stratification, XY components, windows.
//!
//! sensorlog check <program.dl> [--format text|json] [--deny-warnings]
//!         [--nodes <n>] [--events <n>]
//!     Static analysis: per-predicate memory bounds, plan lints
//!     (cartesian joins, dead code, multi-pass negation) and
//!     communication-plane classification, as span-carrying diagnostics.
//!     --format json emits the machine-readable report; --deny-warnings
//!     exits non-zero on warnings; --nodes/--events set the topology and
//!     workload parameters the bound formulas are evaluated against.
//!
//! sensorlog fix <program.dl> [--dry-run] [--nodes <n>] [--events <n>]
//!     Apply every machine-applicable suggestion from `check` (missing
//!     `.window`/`.holddown` declarations, widening-join splits) to the
//!     program in place, re-checking until a fixpoint. --dry-run reports
//!     pending fixes without touching the file and exits 2 if any remain.
//!
//! sensorlog run <program.dl> [--facts <facts.dl>] [--output <pred>]
//!     Centralized bottom-up evaluation over a fact file.
//!
//! sensorlog deploy <program.dl> --grid <m> [--events <events.txt>]
//!         [--strategy pa|centroid|broadcast|local] [--loss <p>]
//!         [--seed <n>] [--horizon <ms>] [--trace <journal.jsonl>]
//!         [--metrics <snapshot.jsonl>]
//!     Distributed evaluation on an m×m simulated grid. Events file lines:
//!         +<at_ms> @<node> fact(args).
//!         -<at_ms> @<node> fact(args).
//!     --trace persists the event journal (replayable via
//!     `sensorlog_netsim::Journal::load` + `ReplayChecker`); --metrics
//!     writes the telemetry snapshot (counters, histograms, phase timings)
//!     as JSONL, or to stdout with `--metrics -`.
//!
//! sensorlog explain <program.dl> --grid <m> --why '<atom>'
//!         [--events <events.txt>] [--strategy pa|centroid|broadcast|local]
//!         [--loss <p>] [--seed <n>] [--horizon <ms>] [--dot <proof.dot>]
//!     Deploy with the provenance plane enabled, then explain one tuple:
//!     a live tuple gets its cross-node derivation tree (rule firings,
//!     carrying messages, per-hop delivery, per-edge sim-latency) plus the
//!     latency-critical chain; an absent tuple gets a why-not verdict (the
//!     first missing or retracted premise per candidate rule). --dot writes
//!     the proof DAG as GraphViz.
//!
//! Every subcommand also accepts --help.
//! ```

use sensorlog::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("fix") => return cmd_fix(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("deploy") => cmd_deploy(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        _ => {
            eprintln!(
                "usage: sensorlog <analyze|check|fix|run|deploy|explain> <program.dl> [options]"
            );
            eprintln!("       (run `sensorlog <subcommand> --help` for options)");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

/// Handle `--help`/`-h` uniformly: print the subcommand's usage and report
/// whether the caller should return early.
fn wants_help(args: &[String], usage: &str) -> bool {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{usage}");
        true
    } else {
        false
    }
}

const ANALYZE_USAGE: &str = "usage: sensorlog analyze <program.dl>
  Parse + classify: safety, stratification, XY components, windows.";

const CHECK_USAGE: &str = "usage: sensorlog check <program.dl> [options]
  --format text|json   report format (default text)
  --deny-warnings      exit non-zero on warnings
  --nodes <n>          topology size for the memory-bound formulas
  --events <n>         per-predicate workload size for the bound formulas";

const FIX_USAGE: &str = "usage: sensorlog fix <program.dl> [options]
  --dry-run            report pending fixes without touching the file;
                       exits 2 when fixes are pending, 0 when clean
  --nodes <n>          topology size for the bound formulas
  --events <n>         per-predicate workload size for the bound formulas
  Applies every machine-applicable suggestion from `sensorlog check`
  (missing `.window`/`.holddown` declarations, widening-join splits) to
  the program in place, re-checking after each batch until a fixpoint.";

const RUN_USAGE: &str = "usage: sensorlog run <program.dl> [options]
  --facts <facts.dl>   load a fact file as the EDB
  --output <pred>      print only this predicate (default: declared outputs)";

const DEPLOY_USAGE: &str = "usage: sensorlog deploy <program.dl> --grid <m> [options]
  --grid <m>           deploy on an m x m simulated grid (required)
  --events <file>      workload script: `+<at_ms> @<node> fact(args).`
  --strategy <s>       pa|centroid|broadcast|local (default pa)
  --loss <p>           per-link loss probability
  --seed <n>           simulator RNG seed
  --horizon <ms>       sim-time horizon (default 600000000)
  --trace <file>       persist the replayable event journal as JSONL
  --metrics <file>     write the telemetry snapshot as JSONL (`-` = stdout)";

const EXPLAIN_USAGE: &str =
    "usage: sensorlog explain <program.dl> --grid <m> --why '<atom>' [options]
  --why '<atom>'       the ground tuple to explain, e.g. --why 'q(1, 2)' (required)
  --grid <m>           deploy on an m x m simulated grid (required)
  --events <file>      workload script: `+<at_ms> @<node> fact(args).`
  --strategy <s>       pa|centroid|broadcast|local (default pa)
  --loss <p>           per-link loss probability
  --seed <n>           simulator RNG seed
  --horizon <ms>       sim-time horizon (default 600000000)
  --dot <file>         write the proof DAG as GraphViz DOT (live tuples only)
  Runs the deployment with the provenance plane enabled, then prints the
  tuple's cross-node derivation tree with per-hop latency attribution, or a
  why-not verdict (first missing/retracted premise) if it was not derived.";

fn flag(args: &[String], name: &str) -> Option<String> {
    // Accepts both `--flag value` and `--flag=value`.
    let prefix = format!("{name}=");
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
        })
}

fn load_program(args: &[String]) -> Result<(String, sensorlog::logic::Program), AnyError> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("missing <program.dl> argument")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let prog = parse_program(&src)?;
    Ok((src, prog))
}

fn cmd_analyze(args: &[String]) -> Result<(), AnyError> {
    if wants_help(args, ANALYZE_USAGE) {
        return Ok(());
    }
    let (_, prog) = load_program(args)?;
    let analysis = analyze(&prog, &BuiltinRegistry::standard())?;
    println!("class: {:?}", analysis.class);
    println!("rules: {}", analysis.program.rules.len());
    for r in &analysis.program.rules {
        println!("  #{:<2} {}", r.id, r);
    }
    println!("strata:");
    for (i, stratum) in analysis.strat.strata.iter().enumerate() {
        let names: Vec<&str> = stratum.iter().map(|s| s.as_str()).collect();
        println!("  {i}: {}", names.join(", "));
    }
    for info in &analysis.xy {
        let order: Vec<String> = info
            .stage_order
            .iter()
            .map(|p| format!("{p}[stage@{}]", info.stage_pos[p]))
            .collect();
        println!("XY component: {}", order.join(" -> "));
    }
    if !analysis.program.windows.is_empty() {
        println!("windows:");
        for (p, w) in &analysis.program.windows {
            println!("  {p}: {w} ms");
        }
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), AnyError> {
    if wants_help(args, CHECK_USAGE) {
        return Ok(());
    }
    use sensorlog::logic::diag;
    // Load the raw source ourselves: parse errors must become diagnostics
    // in the report, not early CLI failures.
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("missing <program.dl> argument")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut params = diag::BoundParams::default();
    if let Some(n) = flag(args, "--nodes") {
        params.nodes = n.parse()?;
    }
    if let Some(e) = flag(args, "--events") {
        params.default_events = e.parse()?;
    }
    let rep = diag::check_source(&src, &BuiltinRegistry::standard(), &params);
    match flag(args, "--format").as_deref().unwrap_or("text") {
        "json" => print!("{}", rep.to_json()),
        "text" => {
            print!("{}", rep.to_text());
            let (e, w) = (
                rep.diags
                    .iter()
                    .filter(|d| d.severity == diag::Severity::Error)
                    .count(),
                rep.diags
                    .iter()
                    .filter(|d| d.severity == diag::Severity::Warning)
                    .count(),
            );
            eprintln!("-- {path}: {e} error(s), {w} warning(s)");
        }
        other => return Err(format!("unknown --format `{other}` (text|json)").into()),
    }
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    if rep.has_errors() {
        return Err(format!("{path}: check failed").into());
    }
    if deny_warnings && rep.has_warnings() {
        return Err(format!("{path}: warnings denied by --deny-warnings").into());
    }
    Ok(())
}

fn cmd_fix(args: &[String]) -> ExitCode {
    match try_fix(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn try_fix(args: &[String]) -> Result<ExitCode, AnyError> {
    if wants_help(args, FIX_USAGE) {
        return Ok(ExitCode::SUCCESS);
    }
    use sensorlog::logic::diag;
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("missing <program.dl> argument")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut params = diag::BoundParams::default();
    if let Some(n) = flag(args, "--nodes") {
        params.nodes = n.parse()?;
    }
    if let Some(e) = flag(args, "--events") {
        params.default_events = e.parse()?;
    }
    let dry_run = args.iter().any(|a| a == "--dry-run");

    let out = diag::fix_source(&src, &BuiltinRegistry::standard(), &params);
    for line in &out.applied {
        eprintln!("{}: {line}", if dry_run { "would fix" } else { "fixed" });
    }
    if out.remaining > 0 {
        return Err(format!(
            "{path}: {} machine-applicable suggestion(s) still pending after {} round(s)",
            out.remaining, out.rounds
        )
        .into());
    }
    if out.applied.is_empty() {
        eprintln!("-- {path}: nothing to fix");
        return Ok(ExitCode::SUCCESS);
    }
    if dry_run {
        eprintln!(
            "-- {path}: {} fix(es) pending (file unchanged; rerun without --dry-run to apply)",
            out.applied.len()
        );
        return Ok(ExitCode::from(2));
    }
    std::fs::write(path, &out.fixed).map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "-- {path}: applied {} fix(es) in {} round(s)",
        out.applied.len(),
        out.rounds
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_run(args: &[String]) -> Result<(), AnyError> {
    if wants_help(args, RUN_USAGE) {
        return Ok(());
    }
    let (src, prog) = load_program(args)?;
    let reg = BuiltinRegistry::standard();
    let analysis = analyze(&prog, &reg)?;
    let outputs: Vec<Symbol> = if let Some(o) = flag(args, "--output") {
        vec![Symbol::intern(&o)]
    } else if analysis.program.outputs.is_empty() {
        analysis.program.idb_preds().into_iter().collect()
    } else {
        analysis.program.outputs.clone()
    };
    let engine = Engine::new(analysis, reg);
    let mut edb = Database::new();
    if let Some(facts_path) = flag(args, "--facts") {
        let text =
            std::fs::read_to_string(&facts_path).map_err(|e| format!("{facts_path}: {e}"))?;
        let n = edb.load_facts(&text)?;
        eprintln!("loaded {n} facts from {facts_path}");
    }
    let out = engine.run(&edb)?;
    for p in outputs {
        for t in out.sorted(p) {
            println!("{p}{t}.");
        }
    }
    let _ = src;
    Ok(())
}

fn cmd_deploy(args: &[String]) -> Result<(), AnyError> {
    if wants_help(args, DEPLOY_USAGE) {
        return Ok(());
    }
    let (src, prog) = load_program(args)?;
    let m: u32 = flag(args, "--grid")
        .ok_or("deploy requires --grid <m>")?
        .parse()?;
    let strategy = match flag(args, "--strategy").as_deref() {
        None | Some("pa") => Strategy::Perpendicular { band_width: 1.0 },
        Some("centroid") => Strategy::Centroid,
        Some("broadcast") => Strategy::NaiveBroadcast,
        Some("local") => Strategy::LocalStorage,
        Some(other) => return Err(format!("unknown strategy `{other}`").into()),
    };
    let mut sim = SimConfig::default();
    if let Some(p) = flag(args, "--loss") {
        sim.loss_prob = p.parse()?;
    }
    if let Some(s) = flag(args, "--seed") {
        sim.seed = s.parse()?;
    }
    let horizon: u64 = flag(args, "--horizon")
        .map(|h| h.parse())
        .transpose()?
        .unwrap_or(600_000_000);

    let trace_path = flag(args, "--trace");
    let metrics_path = flag(args, "--metrics");

    let topo = Topology::square_grid(m);
    let n_nodes = topo.len();
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy,
            ..RtConfig::default()
        },
        sim,
        telemetry: if metrics_path.is_some() {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        },
        ..DeployConfig::default()
    };
    let mut d =
        Deployment::new(&src, BuiltinRegistry::standard(), topo, cfg).map_err(|e| e.to_string())?;
    let _ = prog;
    let journal = trace_path.as_ref().map(|_| d.attach_journal());

    let mut events = Vec::new();
    if let Some(path) = flag(args, "--events") {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        events = WorkloadEvent::parse_script(&text)?;
        if let Some(bad) = events.iter().find(|ev| ev.node.index() >= n_nodes) {
            return Err(format!("event node {} outside the {m}x{m} grid", bad.node).into());
        }
        eprintln!("scheduled {} events", events.len());
    }
    d.schedule_all(events.clone());
    let converged = d.run(horizon);

    for &p in &d.prog.outputs.clone() {
        for t in d.results(p) {
            println!("{p}{t}.");
        }
    }
    eprintln!(
        "-- {} nodes, strategy {}, converged at {:.1}s",
        n_nodes,
        d.strategy.name(),
        converged as f64 / 1000.0
    );
    eprintln!(
        "-- messages: {} total ({} store, {} probe, {} result), hottest node {}, energy {:.1} mJ",
        d.metrics().total_tx(),
        &d.metrics().tx_of("store"),
        &d.metrics().tx_of("probe"),
        &d.metrics().tx_of("result"),
        d.metrics().max_node_load(),
        d.metrics().total_energy_uj() / 1000.0
    );
    if !events.is_empty() && d.metrics().lost() == 0 {
        let report = sensorlog::core::oracle::check(&d, &events, d.prog.outputs[0]);
        eprintln!(
            "-- oracle: {} ({} expected, {} missing, {} spurious)",
            if report.exact() { "exact" } else { "DIVERGED" },
            report.expected,
            report.missing.len(),
            report.spurious.len()
        );
    }
    if let (Some(path), Some(journal)) = (&trace_path, journal) {
        let j = journal.take();
        let n = j.records.len();
        j.save(std::path::Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("-- trace: {n} journal records written to {path}");
    }
    if let Some(path) = &metrics_path {
        let snap = d.telemetry_snapshot();
        if path == "-" {
            print!("{}", snap.to_jsonl());
        } else {
            std::fs::write(path, snap.to_jsonl()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "-- metrics: {} counters, {} histograms, {} phases written to {path}",
                snap.counters.len(),
                snap.hists.len(),
                snap.phases.len()
            );
        }
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), AnyError> {
    use sensorlog::provenance::{explain_atom, ProvDag};

    if wants_help(args, EXPLAIN_USAGE) {
        return Ok(());
    }
    let (src, _prog) = load_program(args)?;
    let m: u32 = flag(args, "--grid")
        .ok_or("explain requires --grid <m>")?
        .parse()?;
    let atom_src = flag(args, "--why").ok_or("explain requires --why '<atom>'")?;
    let (pred, terms) = parse_fact(&atom_src).map_err(|e| format!("--why `{atom_src}`: {e}"))?;
    let tuple = Tuple::new(terms);
    let strategy = match flag(args, "--strategy").as_deref() {
        None | Some("pa") => Strategy::Perpendicular { band_width: 1.0 },
        Some("centroid") => Strategy::Centroid,
        Some("broadcast") => Strategy::NaiveBroadcast,
        Some("local") => Strategy::LocalStorage,
        Some(other) => return Err(format!("unknown strategy `{other}`").into()),
    };
    let mut sim = SimConfig::default();
    if let Some(p) = flag(args, "--loss") {
        sim.loss_prob = p.parse()?;
    }
    if let Some(s) = flag(args, "--seed") {
        sim.seed = s.parse()?;
    }
    let horizon: u64 = flag(args, "--horizon")
        .map(|h| h.parse())
        .transpose()?
        .unwrap_or(600_000_000);

    let topo = Topology::square_grid(m);
    let n_nodes = topo.len();
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy,
            ..RtConfig::default()
        },
        sim,
        provenance: Provenance::enabled(),
        ..DeployConfig::default()
    };
    let mut d =
        Deployment::new(&src, BuiltinRegistry::standard(), topo, cfg).map_err(|e| e.to_string())?;
    // Keep the journal: it enriches hop edges with delivery times, ARQ
    // attempt counts, and loss flags.
    let journal = d.attach_journal();

    let mut events = Vec::new();
    if let Some(path) = flag(args, "--events") {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
        events = WorkloadEvent::parse_script(&text)?;
        if let Some(bad) = events.iter().find(|ev| ev.node.index() >= n_nodes) {
            return Err(format!("event node {} outside the {m}x{m} grid", bad.node).into());
        }
        eprintln!("scheduled {} events", events.len());
    }
    d.schedule_all(events);
    let converged = d.run(horizon);

    let records = d.provenance_records();
    let j = journal.take();
    let dag = ProvDag::build_with_journal(&records, &j);
    eprintln!(
        "-- {} nodes, converged at {:.1}s, {} provenance records",
        n_nodes,
        converged as f64 / 1000.0,
        records.len()
    );
    let explanation = explain_atom(&dag, &d.prog.analysis.program, &d.prog.reg, pred, &tuple);
    print!("{}", explanation.text());
    if let Some(path) = flag(args, "--dot") {
        match explanation.dot() {
            Some(dot) => {
                std::fs::write(&path, dot).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("-- proof DAG written to {path}");
            }
            None => eprintln!("-- no proof, no DOT output"),
        }
    }
    Ok(())
}
