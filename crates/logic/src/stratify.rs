//! Stratification analysis.
//!
//! Assigns each predicate a stratum such that positive dependencies stay
//! within or below the head's stratum and negative/aggregate dependencies
//! are strictly below. A program is stratified iff such an assignment
//! exists, i.e. no negative edge lies inside an SCC. Programs that fail the
//! test may still be [XY-stratified](crate::xy) (Sec. IV-C).

use crate::ast::Program;
use crate::depgraph::{DepGraph, Polarity};
use crate::span::Span;
use crate::symbol::Symbol;
use std::collections::BTreeMap;
use std::fmt;

/// Result of stratifying a program.
#[derive(Clone, Debug)]
pub struct Stratification {
    /// Stratum index per predicate; base predicates are stratum 0.
    pub level: BTreeMap<Symbol, usize>,
    /// Predicates grouped by stratum, lowest first. Within a stratum the
    /// grouping preserves SCC order so recursion stays together.
    pub strata: Vec<Vec<Symbol>>,
}

impl Stratification {
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    pub fn level_of(&self, p: Symbol) -> usize {
        self.level.get(&p).copied().unwrap_or(0)
    }
}

/// Failure: recursion through negation (or aggregation).
#[derive(Clone, Debug, PartialEq)]
pub struct StratifyError {
    /// A negative edge inside an SCC, as (head, body, rule id).
    pub cycle_edge: (Symbol, Symbol, usize),
    pub scc: Vec<Symbol>,
    /// Source span of the rule carrying the negative edge.
    pub span: Span,
}

impl fmt::Display for StratifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program is not stratified: predicate {} depends negatively on {} (rule #{} at {}) within the recursive component {{{}}}",
            self.cycle_edge.0,
            self.cycle_edge.1,
            self.cycle_edge.2,
            self.span,
            self.scc
                .iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for StratifyError {}

/// Stratify `prog`, or report the offending negative cycle.
pub fn stratify(prog: &Program) -> Result<Stratification, StratifyError> {
    let g = DepGraph::build(prog);
    stratify_graph(&g)
}

/// Stratify a prebuilt dependency graph.
pub fn stratify_graph(g: &DepGraph) -> Result<Stratification, StratifyError> {
    let sccs = g.sccs(); // reverse topological: dependencies first
                         // Reject negative edges inside an SCC.
    for scc in &sccs {
        let negs = g.internal_negative_edges(scc);
        if let Some(&edge) = negs.first() {
            return Err(StratifyError {
                cycle_edge: edge,
                scc: scc.clone(),
                span: g.rule_spans.get(&edge.2).copied().unwrap_or_default(),
            });
        }
    }

    // Assign levels walking SCCs dependencies-first: level(P) =
    // max(level(Q) for positive deps, level(Q)+1 for negative deps).
    let mut level: BTreeMap<Symbol, usize> = BTreeMap::new();
    let mut scc_of: BTreeMap<Symbol, usize> = BTreeMap::new();
    for (i, scc) in sccs.iter().enumerate() {
        for &p in scc {
            scc_of.insert(p, i);
        }
    }
    for (i, scc) in sccs.iter().enumerate() {
        let mut lvl = 0usize;
        for &p in scc {
            for (q, pol, _) in g.succ(p) {
                if scc_of.get(q) == Some(&i) {
                    continue; // intra-SCC (necessarily positive here)
                }
                let ql = level.get(q).copied().unwrap_or(0);
                let need = match pol {
                    Polarity::Positive => ql,
                    Polarity::Negative => ql + 1,
                };
                lvl = lvl.max(need);
            }
        }
        for &p in scc {
            level.insert(p, lvl);
        }
    }

    let max_level = level.values().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<Symbol>> = vec![Vec::new(); max_level + 1];
    // Preserve SCC (reverse topological) order inside each stratum so a
    // stratum's relations can be evaluated in dependency order.
    for scc in &sccs {
        let l = level[&scc[0]];
        strata[l].extend(scc.iter().copied());
    }
    Ok(Stratification { level, strata })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn base_only_is_single_stratum() {
        let p = parse_program("q(X) :- e(X).").unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.level_of(sym("e")), 0);
        assert_eq!(s.level_of(sym("q")), 0);
    }

    #[test]
    fn negation_bumps_stratum() {
        let p = parse_program(
            r#"
            cov(L) :- veh(L).
            uncov(L) :- not cov(L), enemy(L).
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.level_of(sym("cov")), 0);
        assert_eq!(s.level_of(sym("uncov")), 1);
        assert_eq!(s.num_strata(), 2);
    }

    #[test]
    fn chained_negation_stacks() {
        let p = parse_program(
            r#"
            a(X) :- e(X).
            b(X) :- e(X), not a(X).
            c(X) :- e(X), not b(X).
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.level_of(sym("a")), 0);
        assert_eq!(s.level_of(sym("b")), 1);
        assert_eq!(s.level_of(sym("c")), 2);
    }

    #[test]
    fn positive_recursion_stays_in_stratum() {
        let p = parse_program(
            r#"
            t(X, Y) :- e(X, Y).
            t(X, Y) :- t(X, Z), e(Z, Y).
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.level_of(sym("t")), 0);
    }

    #[test]
    fn recursion_through_negation_rejected() {
        let p = parse_program("win(X) :- move(X, Y), not win(Y).").unwrap();
        let err = stratify(&p).unwrap_err();
        assert_eq!(err.cycle_edge.0, sym("win"));
        assert_eq!(err.cycle_edge.1, sym("win"));
        assert!(err.to_string().contains("not stratified"));
    }

    #[test]
    fn logich_is_not_plain_stratified() {
        // Example 3: recursion with negation across h/hp — must fail plain
        // stratification (it is XY-stratified instead; see xy.rs).
        let p = parse_program(
            r#"
            h(a, X, 1) :- g(a, X).
            hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
            h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
            "#,
        )
        .unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn aggregation_acts_as_negation() {
        let p = parse_program(
            r#"
            p(X, D) :- e(X, D).
            best(X, min<D>) :- p(X, D).
            q(X) :- best(X, D).
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.level_of(sym("p")), 0);
        assert_eq!(s.level_of(sym("best")), 1);
        assert_eq!(s.level_of(sym("q")), 1);
    }

    #[test]
    fn recursive_aggregation_rejected() {
        let p = parse_program("p(X, min<D>) :- p(Y, D), e(Y, X).").unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn strata_grouping_is_dependency_ordered() {
        let p = parse_program(
            r#"
            a(X) :- e(X).
            b(X) :- a(X).
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        let st0 = &s.strata[0];
        let ia = st0.iter().position(|&x| x == sym("a")).unwrap();
        let ib = st0.iter().position(|&x| x == sym("b")).unwrap();
        assert!(ia < ib);
    }
}
