//! Multi-hop routing.
//!
//! Grids route greedily along coordinates (x first, then y — exactly the
//! "route in x then y" behaviour PA needs for its perpendicular walks).
//! Arbitrary topologies use greedy geographic routing with a precomputed
//! BFS next-hop fallback for local minima (our substitution for GPSR-style
//! perimeter mode — see DESIGN.md).

use sensorlog_netsim::{NodeId, Topology};
use sensorlog_telemetry::{Scope, Telemetry};

/// Next-hop oracle over a topology. Cheap to build for grids; for general
/// graphs it lazily materializes per-destination BFS parent trees.
#[derive(Debug)]
pub struct Router {
    /// `fallback[dest][node]` = next hop from `node` toward `dest`
    /// (usize::MAX = unreachable/self). Built on demand per destination.
    fallback: Vec<Option<Vec<u32>>>,
    tele: Telemetry,
}

const NONE: u32 = u32::MAX;

impl Router {
    pub fn new(topo: &Topology) -> Router {
        Router {
            fallback: vec![None; topo.len()],
            tele: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle: hop decisions and BFS-table builds are
    /// counted under `Scope::Layer("netstack")`.
    pub fn with_telemetry(mut self, tele: Telemetry) -> Router {
        self.tele = tele;
        self
    }

    /// Next hop from `from` toward `dest`. `None` when `from == dest` or
    /// when `dest` is unreachable from `from` (disconnected topologies
    /// route nothing across a partition — callers drop the message).
    pub fn next_hop(&mut self, topo: &Topology, from: NodeId, dest: NodeId) -> Option<NodeId> {
        if from == dest {
            return None;
        }
        // Grid fast path: decrease x difference first, then y.
        if let (Some((fx, fy)), Some((dx, dy))) = (topo.grid_coords(from), topo.grid_coords(dest)) {
            let (nx, ny) = if fx != dx {
                (if dx > fx { fx + 1 } else { fx - 1 }, fy)
            } else {
                (fx, if dy > fy { fy + 1 } else { fy - 1 })
            };
            self.tele.bump(Scope::Layer("netstack"), "grid_hops");
            return topo.node_at(nx, ny);
        }
        // General topologies: BFS parent pointers toward dest. (Pure greedy
        // can live-lock against the fallback at local minima — mixing the
        // two per hop is not loop-free — so the router is fully
        // table-driven off-grid; `greedy_step` remains available as a
        // primitive for protocols that handle their own recovery.)
        let hop = self.table_for(topo, dest)[from.index()];
        match hop {
            NONE => {
                self.tele.bump(Scope::Layer("netstack"), "unreachable");
                None // unreachable across a partition
            }
            hop => {
                self.tele.bump(Scope::Layer("netstack"), "bfs_hops");
                Some(NodeId(hop))
            }
        }
    }

    fn table_for(&mut self, topo: &Topology, dest: NodeId) -> &Vec<u32> {
        let tele = &self.tele;
        self.fallback[dest.index()].get_or_insert_with(|| {
            tele.bump(Scope::Layer("netstack"), "bfs_tables_built");
            let mut next = vec![NONE; topo.len()];
            let mut queue = std::collections::VecDeque::from([dest]);
            let mut seen = vec![false; topo.len()];
            seen[dest.index()] = true;
            while let Some(v) = queue.pop_front() {
                for &w in topo.neighbors(v) {
                    if !seen[w.index()] {
                        seen[w.index()] = true;
                        // First hop from w toward dest goes through v.
                        next[w.index()] = v.0;
                        queue.push_back(w);
                    }
                }
            }
            next
        })
    }
}

/// One greedy geographic step: the neighbor strictly closer to `dest`.
pub fn greedy_step(topo: &Topology, from: NodeId, dest: NodeId) -> Option<NodeId> {
    let d0 = topo.distance(from, dest);
    let mut best: Option<(NodeId, f64)> = None;
    for &n in topo.neighbors(from) {
        if n == dest {
            return Some(dest);
        }
        let d = topo.distance(n, dest);
        if d < d0 && best.is_none_or(|(_, bd)| d < bd) {
            best = Some((n, d));
        }
    }
    best.map(|(n, _)| n)
}

/// One greedy geographic step that detours around blocked nodes: the
/// unblocked neighbor strictly closer to `dest`. Route repair for the
/// fault plane — `blocked` is the caller's belief about which nodes are
/// dead. `None` when every strictly-closer neighbor is blocked (the
/// caller falls back to its primary hop and lets the refresh plane retry
/// after the belief changes): strictly-closer is required so a repaired
/// route can never loop.
pub fn next_hop_avoiding(
    topo: &Topology,
    from: NodeId,
    dest: NodeId,
    blocked: &dyn Fn(NodeId) -> bool,
) -> Option<NodeId> {
    let d0 = topo.distance(from, dest);
    let mut best: Option<(NodeId, f64)> = None;
    for &n in topo.neighbors(from) {
        if blocked(n) {
            continue;
        }
        if n == dest {
            return Some(dest);
        }
        let d = topo.distance(n, dest);
        if d < d0 && best.is_none_or(|(_, bd)| d < bd) {
            best = Some((n, d));
        }
    }
    best.map(|(n, _)| n)
}

/// The full multi-hop path from `from` to `dest` (inclusive of both
/// ends), or `None` when `dest` is unreachable from `from`.
pub fn route_path(
    router: &mut Router,
    topo: &Topology,
    from: NodeId,
    dest: NodeId,
) -> Option<Vec<NodeId>> {
    let mut path = vec![from];
    let mut cur = from;
    while cur != dest {
        let nxt = router.next_hop(topo, cur, dest)?;
        assert!(
            !path.contains(&nxt),
            "routing loop {from}->{dest} via {nxt}"
        );
        path.push(nxt);
        cur = nxt;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_routes_x_then_y() {
        let topo = Topology::square_grid(5);
        let mut r = Router::new(&topo);
        let from = topo.node_at(0, 0).unwrap();
        let dest = topo.node_at(3, 2).unwrap();
        let path = route_path(&mut r, &topo, from, dest).unwrap();
        // 3 x-steps then 2 y-steps = 6 nodes.
        assert_eq!(path.len(), 6);
        let coords: Vec<_> = path.iter().map(|&n| topo.grid_coords(n).unwrap()).collect();
        assert_eq!(coords[0], (0, 0));
        assert_eq!(coords[3], (3, 0));
        assert_eq!(coords[5], (3, 2));
    }

    #[test]
    fn self_route_is_none() {
        let topo = Topology::square_grid(3);
        let mut r = Router::new(&topo);
        assert_eq!(r.next_hop(&topo, NodeId(4), NodeId(4)), None);
    }

    #[test]
    fn geometric_routes_reach() {
        let topo = Topology::random_geometric(40, 6.0, 1.7, 1).unwrap();
        let mut r = Router::new(&topo);
        for a in [0u32, 5, 17] {
            for b in [3u32, 22, 39] {
                if a == b {
                    continue;
                }
                let path = route_path(&mut r, &topo, NodeId(a), NodeId(b)).unwrap();
                assert_eq!(*path.first().unwrap(), NodeId(a));
                assert_eq!(*path.last().unwrap(), NodeId(b));
                // every hop is a radio link
                for w in path.windows(2) {
                    assert!(topo.are_neighbors(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn greedy_step_makes_progress() {
        let topo = Topology::square_grid(4);
        let step = greedy_step(&topo, NodeId(0), NodeId(15)).unwrap();
        assert!(topo.distance(step, NodeId(15)) < topo.distance(NodeId(0), NodeId(15)));
    }

    #[test]
    fn avoiding_detours_around_dead_nodes_without_looping() {
        let topo = Topology::square_grid(4);
        let from = topo.node_at(0, 0).unwrap();
        let dest = topo.node_at(3, 3).unwrap();
        // Greedy would step east to (1,0); with that node dead the repair
        // steps north to (0,1) — still strictly closer to dest.
        let dead = topo.node_at(1, 0).unwrap();
        let step = next_hop_avoiding(&topo, from, dest, &|n| n == dead).unwrap();
        assert_eq!(step, topo.node_at(0, 1).unwrap());
        assert!(topo.distance(step, dest) < topo.distance(from, dest));
        // A fully walled-off corner has no strictly-closer unblocked hop.
        let wall = [topo.node_at(1, 0).unwrap(), topo.node_at(0, 1).unwrap()];
        assert_eq!(
            next_hop_avoiding(&topo, from, dest, &|n| wall.contains(&n)),
            None
        );
        // Repaired routes terminate: walk hop by hop around the dead node.
        let mut cur = from;
        let mut hops = 0;
        while cur != dest {
            let next = next_hop_avoiding(&topo, cur, dest, &|n| n == dead)
                .expect("grid interior always has a detour");
            assert!(topo.are_neighbors(cur, next));
            cur = next;
            hops += 1;
            assert!(hops <= topo.len(), "routing loop");
        }
    }

    #[test]
    fn path_length_matches_hop_distance_on_grid() {
        let topo = Topology::square_grid(6);
        let mut r = Router::new(&topo);
        let a = topo.node_at(1, 1).unwrap();
        let b = topo.node_at(4, 5).unwrap();
        let path = route_path(&mut r, &topo, a, b).unwrap();
        assert_eq!(path.len() - 1, topo.hop_distance(a, b).unwrap());
    }
}
