//! Deterministic event tracing: journal, replay check, run summaries.
//!
//! Every simulator event — send attempt, delivery, drop, timer, node
//! failure — can be journaled as a structured [`TraceRecord`] carrying the
//! simulated time and a monotonic trace sequence number. The journal of a
//! seeded run is a complete, canonical transcript: re-running the same
//! configuration must reproduce it byte-for-byte (see
//! [`Journal::to_text`]), which turns "the run is deterministic" from a
//! hope into an assertable property and makes divergence *localizable* —
//! [`ReplayChecker`] pinpoints the first record where a re-run departs
//! from a recorded journal.
//!
//! Tracing is off by default and costs nothing when disabled: the
//! simulator holds an `Option<Box<dyn TraceSink>>` and every emission
//! site is `if let Some(sink) = …` around a closure that *constructs* the
//! record, so a disabled run pays one predictable branch per event and
//! never allocates or formats anything. Benches run with tracing off.

use crate::sim::SimTime;
use crate::topology::NodeId;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Why a message did not reach its destination.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Lost on the air (Bernoulli link loss), possibly after ARQ retries.
    Loss,
    /// Destination node had crashed before delivery.
    DeadNode,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DropReason::Loss => "loss",
            DropReason::DeadNode => "dead",
        })
    }
}

/// One structured simulator event.
///
/// Message payloads are represented by their [`MsgMeta`](crate::MsgMeta)
/// kind and size, not their contents: the trace layer must not require
/// `Msg: Debug` and the (kind, bytes, endpoints, time) tuple is already
/// enough to detect any ordering or scheduling divergence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node's `on_start` callback ran.
    Start { node: NodeId },
    /// One transmission attempt (each ARQ retry is its own record).
    Send {
        from: NodeId,
        to: NodeId,
        kind: &'static str,
        bytes: usize,
        attempt: u32,
    },
    /// A message reached its destination's `on_message`.
    Deliver {
        from: NodeId,
        to: NodeId,
        kind: &'static str,
        bytes: usize,
    },
    /// A transmission attempt or scheduled delivery was dropped.
    Drop {
        from: NodeId,
        to: NodeId,
        kind: &'static str,
        reason: DropReason,
    },
    /// A timer fired at `node`.
    Timer { node: NodeId, tag: u64 },
    /// A node was crashed via `fail_node`.
    NodeFail { node: NodeId },
}

/// A journaled event: monotonic trace sequence number + simulated time +
/// the event itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    pub seq: u64,
    pub at: SimTime,
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    /// Canonical single-line rendering; [`Journal::to_text`] is the
    /// concatenation of these, so two runs are byte-identical iff their
    /// rendered journals are equal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08} {:>8} ", self.seq, self.at)?;
        match &self.event {
            TraceEvent::Start { node } => write!(f, "start {node}"),
            TraceEvent::Send {
                from,
                to,
                kind,
                bytes,
                attempt,
            } => write!(f, "send {from}->{to} {kind} {bytes}B try{attempt}"),
            TraceEvent::Deliver {
                from,
                to,
                kind,
                bytes,
            } => write!(f, "deliver {from}->{to} {kind} {bytes}B"),
            TraceEvent::Drop {
                from,
                to,
                kind,
                reason,
            } => write!(f, "drop {from}->{to} {kind} {reason}"),
            TraceEvent::Timer { node, tag } => write!(f, "timer {node} tag={tag}"),
            TraceEvent::NodeFail { node } => write!(f, "fail {node}"),
        }
    }
}

/// Receiver of trace records. Implementations must not assume anything
/// about call frequency; the simulator calls `record` once per event in
/// event order.
pub trait TraceSink {
    fn record(&mut self, rec: TraceRecord);
}

/// Discards everything. Attaching this is equivalent to (but costlier
/// than) not attaching a sink at all; it exists for tests and for APIs
/// that want a sink unconditionally.
#[derive(Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _rec: TraceRecord) {}
}

/// A recorded run: the seed it was produced under plus every record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Journal {
    /// Simulator RNG seed of the recorded run.
    pub seed: u64,
    pub records: Vec<TraceRecord>,
}

impl Journal {
    /// Canonical textual rendering. Byte-identical across runs iff the
    /// runs produced identical event sequences.
    pub fn to_text(&self) -> String {
        use fmt::Write;
        let mut s = String::with_capacity(self.records.len() * 48 + 16);
        let _ = writeln!(s, "seed={}", self.seed);
        for r in &self.records {
            let _ = writeln!(s, "{r}");
        }
        s
    }

    /// FNV-1a hash of [`Journal::to_text`] — a compact fingerprint for
    /// logging alongside experiment rows.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_text().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Aggregate counters for experiment tables.
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        for r in &self.records {
            s.absorb(r);
        }
        s
    }

    /// First index at which `self` and `other` disagree (record-wise),
    /// or `None` when one is a prefix of the other of equal length.
    pub fn first_divergence(&self, other: &Journal) -> Option<usize> {
        let n = self.records.len().min(other.records.len());
        (0..n)
            .find(|&i| self.records[i] != other.records[i])
            .or_else(|| (self.records.len() != other.records.len()).then_some(n))
    }
}

/// Per-run aggregate of a [`Journal`] — the numbers experiment tables
/// want (message counts by kind, drops, timer volume).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    pub sends: u64,
    pub delivers: u64,
    pub drops_loss: u64,
    pub drops_dead: u64,
    pub timers: u64,
    pub node_failures: u64,
    pub sends_by_kind: BTreeMap<&'static str, u64>,
}

impl TraceSummary {
    /// Fold one record into the counters.
    pub fn absorb(&mut self, rec: &TraceRecord) {
        match &rec.event {
            TraceEvent::Start { .. } => {}
            TraceEvent::Send { kind, .. } => {
                self.sends += 1;
                *self.sends_by_kind.entry(kind).or_insert(0) += 1;
            }
            TraceEvent::Deliver { .. } => self.delivers += 1,
            TraceEvent::Drop { reason, .. } => match reason {
                DropReason::Loss => self.drops_loss += 1,
                DropReason::DeadNode => self.drops_dead += 1,
            },
            TraceEvent::Timer { .. } => self.timers += 1,
            TraceEvent::NodeFail { .. } => self.node_failures += 1,
        }
    }
}

/// Shared handle to a streaming [`TraceSummary`] — accumulates counters in
/// constant memory, never storing records. The right sink for long
/// experiment runs where only the aggregate matters; use
/// [`SharedJournal`] when the full transcript is needed.
#[derive(Clone, Default)]
pub struct SharedSummary(Rc<RefCell<TraceSummary>>);

impl SharedSummary {
    pub fn new() -> SharedSummary {
        SharedSummary::default()
    }

    /// Snapshot of the counters so far.
    pub fn snapshot(&self) -> TraceSummary {
        self.0.borrow().clone()
    }
}

impl TraceSink for SharedSummary {
    fn record(&mut self, rec: TraceRecord) {
        self.0.borrow_mut().absorb(&rec);
    }
}

/// Shared handle to a [`Journal`] being written. Clone it, hand one clone
/// to the simulator as the sink, keep the other to read the journal after
/// the run (the simulator owns its sink, so a shared cell is the ergonomic
/// way to get the data back out).
#[derive(Clone, Default)]
pub struct SharedJournal(Rc<RefCell<Journal>>);

impl SharedJournal {
    pub fn new(seed: u64) -> SharedJournal {
        SharedJournal(Rc::new(RefCell::new(Journal {
            seed,
            records: Vec::new(),
        })))
    }

    /// Snapshot of the journal so far.
    pub fn snapshot(&self) -> Journal {
        self.0.borrow().clone()
    }

    /// Take the journal out, leaving an empty one behind.
    pub fn take(&self) -> Journal {
        std::mem::take(&mut self.0.borrow_mut())
    }
}

impl TraceSink for SharedJournal {
    fn record(&mut self, rec: TraceRecord) {
        self.0.borrow_mut().records.push(rec);
    }
}

/// Verifies a re-run against a recorded journal record-by-record. The
/// first mismatch is retained (expected vs actual) rather than panicking,
/// so callers can report it with context; `result()` at the end also
/// catches truncated re-runs.
pub struct ReplayChecker {
    expected: Journal,
    next: usize,
    divergence: Option<ReplayDivergence>,
}

/// The first point where a replay departed from the recorded journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayDivergence {
    pub index: usize,
    /// `None` when the replay produced more records than were recorded.
    pub expected: Option<TraceRecord>,
    /// `None` when the replay ended before the recorded journal did.
    pub actual: Option<TraceRecord>,
}

impl fmt::Display for ReplayDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "replay diverged at record {}:", self.index)?;
        match &self.expected {
            Some(r) => writeln!(f, "  expected: {r}")?,
            None => writeln!(f, "  expected: <end of journal>")?,
        }
        match &self.actual {
            Some(r) => write!(f, "  actual:   {r}"),
            None => write!(f, "  actual:   <replay ended>"),
        }
    }
}

impl ReplayChecker {
    pub fn new(expected: Journal) -> ReplayChecker {
        ReplayChecker {
            expected,
            next: 0,
            divergence: None,
        }
    }

    /// `Ok(())` when every record matched and the replay covered the whole
    /// journal; otherwise the first divergence.
    pub fn result(&self) -> Result<(), ReplayDivergence> {
        if let Some(d) = &self.divergence {
            return Err(d.clone());
        }
        if self.next < self.expected.records.len() {
            return Err(ReplayDivergence {
                index: self.next,
                expected: Some(self.expected.records[self.next].clone()),
                actual: None,
            });
        }
        Ok(())
    }
}

impl TraceSink for ReplayChecker {
    fn record(&mut self, rec: TraceRecord) {
        if self.divergence.is_some() {
            return; // only the first divergence is interesting
        }
        match self.expected.records.get(self.next) {
            Some(exp) if *exp == rec => self.next += 1,
            Some(exp) => {
                self.divergence = Some(ReplayDivergence {
                    index: self.next,
                    expected: Some(exp.clone()),
                    actual: Some(rec),
                });
            }
            None => {
                self.divergence = Some(ReplayDivergence {
                    index: self.next,
                    expected: None,
                    actual: Some(rec),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, at: SimTime, event: TraceEvent) -> TraceRecord {
        TraceRecord { seq, at, event }
    }

    fn sample_journal() -> Journal {
        Journal {
            seed: 7,
            records: vec![
                rec(0, 0, TraceEvent::Start { node: NodeId(0) }),
                rec(
                    1,
                    0,
                    TraceEvent::Send {
                        from: NodeId(0),
                        to: NodeId(1),
                        kind: "ping",
                        bytes: 8,
                        attempt: 0,
                    },
                ),
                rec(
                    2,
                    12,
                    TraceEvent::Deliver {
                        from: NodeId(0),
                        to: NodeId(1),
                        kind: "ping",
                        bytes: 8,
                    },
                ),
                rec(
                    3,
                    20,
                    TraceEvent::Timer {
                        node: NodeId(1),
                        tag: 4,
                    },
                ),
                rec(
                    4,
                    21,
                    TraceEvent::Drop {
                        from: NodeId(1),
                        to: NodeId(0),
                        kind: "ping",
                        reason: DropReason::Loss,
                    },
                ),
                rec(5, 30, TraceEvent::NodeFail { node: NodeId(1) }),
            ],
        }
    }

    #[test]
    fn text_rendering_is_stable() {
        let j = sample_journal();
        let text = j.to_text();
        assert!(text.starts_with("seed=7\n"));
        assert!(text.contains("send n0->n1 ping 8B try0"));
        assert!(text.contains("drop n1->n0 ping loss"));
        assert_eq!(text, j.to_text(), "rendering must be a pure function");
        assert_eq!(j.content_hash(), j.content_hash());
    }

    #[test]
    fn summary_counts_by_kind() {
        let s = sample_journal().summary();
        assert_eq!(s.sends, 1);
        assert_eq!(s.delivers, 1);
        assert_eq!(s.drops_loss, 1);
        assert_eq!(s.drops_dead, 0);
        assert_eq!(s.timers, 1);
        assert_eq!(s.node_failures, 1);
        assert_eq!(s.sends_by_kind["ping"], 1);
    }

    #[test]
    fn replay_checker_accepts_identical_stream() {
        let j = sample_journal();
        let mut c = ReplayChecker::new(j.clone());
        for r in &j.records {
            c.record(r.clone());
        }
        assert!(c.result().is_ok());
    }

    #[test]
    fn replay_checker_flags_mismatch_and_truncation() {
        let j = sample_journal();
        // Mismatch at index 1.
        let mut c = ReplayChecker::new(j.clone());
        c.record(j.records[0].clone());
        c.record(rec(
            1,
            0,
            TraceEvent::Timer {
                node: NodeId(9),
                tag: 0,
            },
        ));
        let d = c.result().unwrap_err();
        assert_eq!(d.index, 1);
        assert!(d.expected.is_some() && d.actual.is_some());
        assert!(format!("{d}").contains("diverged at record 1"));
        // Truncated replay.
        let mut c = ReplayChecker::new(j.clone());
        c.record(j.records[0].clone());
        let d = c.result().unwrap_err();
        assert_eq!(d.index, 1);
        assert!(d.actual.is_none());
        // Overlong replay.
        let mut c = ReplayChecker::new(Journal::default());
        c.record(j.records[0].clone());
        let d = c.result().unwrap_err();
        assert_eq!(d.index, 0);
        assert!(d.expected.is_none());
    }

    #[test]
    fn first_divergence_positions() {
        let a = sample_journal();
        assert_eq!(a.first_divergence(&a), None);
        let mut b = a.clone();
        b.records[2].at += 1;
        assert_eq!(a.first_divergence(&b), Some(2));
        let mut c = a.clone();
        c.records.pop();
        assert_eq!(a.first_divergence(&c), Some(5));
    }

    #[test]
    fn shared_summary_streams_counters() {
        let shared = SharedSummary::new();
        let mut sink = shared.clone();
        for r in sample_journal().records {
            sink.record(r);
        }
        assert_eq!(shared.snapshot(), sample_journal().summary());
    }

    #[test]
    fn shared_journal_round_trip() {
        let shared = SharedJournal::new(3);
        let mut sink = shared.clone();
        sink.record(rec(0, 0, TraceEvent::Start { node: NodeId(0) }));
        assert_eq!(shared.snapshot().records.len(), 1);
        let j = shared.take();
        assert_eq!(j.seed, 3);
        assert_eq!(j.records.len(), 1);
        assert!(shared.snapshot().records.is_empty());
    }
}
