//! Runtime cross-validation of the static analyzer's memory bounds
//! (`sensorlog check` / `logic::absint`, paper Sec. V): on a 200-node
//! lossy logicH deployment, every per-node per-predicate peak stored-tuple
//! count must stay under the statically derived envelope, and the total
//! message count must stay under the communication envelope. The analyzer
//! and the runtime implement the paper's memory accounting independently —
//! agreement here is evidence both are right, a violation means one of
//! them drifted. A proptest extends the same soundness claim to random
//! safe programs over random grid/geometric topologies.

use proptest::prelude::*;
use sensorlog::core::deploy::{DeployConfig, Deployment, WorkloadEvent};
use sensorlog::core::invariants;
use sensorlog::core::strategy::Strategy;
use sensorlog::core::workload::graph_edges;
use sensorlog::logic::absint::frontier;
use sensorlog::logic::diag::{memory_bounds, BoundParams};
use sensorlog::prelude::*;
use sensorlog_eval::UpdateKind;
use std::collections::BTreeMap;

const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

fn run_200_node() -> Deployment {
    let topo = Topology::grid(20, 10); // 200 nodes
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig {
            loss_prob: 0.1,
            seed: 17,
            ..SimConfig::default()
        },
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(LOGIC_H, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    d.schedule_all(graph_edges(&topo, 100, 200));
    d.run(2_000_000);
    d
}

#[test]
fn static_bounds_dominate_200_node_run() {
    let d = run_200_node();

    // The invariant itself: no node exceeded 2 × T(p) for any predicate,
    // and transmissions stayed under the communication envelopes (total
    // and per message kind).
    let report = invariants::check_static_bounds(&d);
    assert!(report.ok(), "{report}");

    // Recompute the model the invariant used and check it is *meaningful*:
    // every predicate of the program has a finite, non-trivial bound.
    let params = BoundParams {
        nodes: d.sim.topology().len() as u64,
        default_events: 0,
        events: d.injected_events().clone(),
    };
    let fr = frontier(&d.prog.analysis);
    let eg = *d
        .injected_events()
        .get(&Symbol::intern("g"))
        .expect("g edges were injected");
    assert!(eg > 100, "workload generated only {eg} edges");
    let t = |name: &str| -> u64 {
        fr.bounds[&Symbol::intern(name)]
            .eval(&params)
            .unwrap_or_else(|| panic!("{name} must have a finite bound"))
    };
    // Frontier-width bounds are stage-free: the first-entry guard on the
    // recursive h rule caps it at one derivation per (node, edge) pair,
    // and hp at its per-stage firing width times the stage multiplicity —
    // no factor of S = N + 1.
    assert_eq!(t("g"), eg);
    assert_eq!(t("h"), 1 + 2 * eg);
    assert_eq!(t("hp"), 3 * eg);

    // The legacy S·Σ bounds carried the full stage factor S = N + 1; the
    // frontier pass strips it (h) or trades it for the constant stage
    // multiplicity 3 (hp), so both tighten by ≥ S/3 ≈ 67× at this size.
    let legacy = memory_bounds(&d.prog.analysis);
    let stages = params.nodes + 1;
    for name in ["h", "hp"] {
        let loose = legacy[&Symbol::intern(name)]
            .eval(&params)
            .expect("legacy bound finite");
        assert!(
            t(name) * (stages / 3) <= loose,
            "{name}: frontier bound {} did not tighten legacy {loose}",
            t(name)
        );
    }

    // Observed network-wide per-predicate peaks, and the domination margin.
    let mut observed: BTreeMap<Symbol, usize> = BTreeMap::new();
    for id in d.sim.topology().nodes() {
        for (&pred, &peak) in &d.sim.node(id).peak_pred_stored {
            let e = observed.entry(pred).or_insert(0);
            *e = (*e).max(peak);
        }
    }
    // The lossy run must at least materialize the edge stream and the
    // spanning-tree head; hp's deep 3-way join may or may not complete
    // under 10% loss, so its cap is checked only when it stored anything.
    for name in ["g", "h"] {
        assert!(
            observed.contains_key(&Symbol::intern(name)),
            "no stored tuples observed for {name}"
        );
    }
    for (&pred, &peak) in &observed {
        assert!(peak > 0, "{pred} recorded a zero peak");
        let cap = 2 * t(pred.as_str());
        assert!(
            (peak as u64) <= cap,
            "{pred}: observed peak {peak} exceeds static cap {cap}"
        );
    }

    // Communication envelope: the run's total transmissions sit far below
    // the static per-update routing envelope.
    let envelope: u64 = fr
        .bounds
        .values()
        .map(|b| b.eval(&params).expect("all finite") * 2)
        .sum::<u64>()
        * 8
        * params.nodes;
    let tx = d.metrics().total_tx();
    assert!(
        tx < envelope,
        "total tx {tx} exceeds static envelope {envelope}"
    );
}

/// The same cross-validation exposed as telemetry: the snapshot's
/// `diag.bound.violations` gauge is zero, per-predicate peaks appear as
/// `peak_stored` gauges, and `diag.bound.slack` (enforced per-node
/// ceiling 2·T(p) ÷ busiest node's peak) reports the tightness of the
/// frontier bound per predicate — 0 would mean an actual violation.
#[test]
fn snapshot_reports_zero_bound_violations() {
    let d = run_200_node();
    let snap = d.telemetry_snapshot();
    assert_eq!(snap.gauge("global", "diag.bound.violations"), 0);
    for name in ["pred:g", "pred:h"] {
        assert!(
            snap.gauge(name, "peak_stored") > 0,
            "no peak_stored gauge for {name}"
        );
        let slack = snap.gauge(name, "diag.bound.slack");
        assert!(slack >= 1, "{name}: bound slack {slack} below 1 — unsound");
    }
    // Tightness at this size: the 2·T ceiling for the edge stream stays
    // within ~2 storage bands (a band ≈ 20 nodes at 20×10) of the busiest
    // node's peak. The ≤10× acceptance target is pinned on the smaller
    // bench grids (the `diag` bench bin), where bands are narrow enough
    // for one node to see most of a predicate.
    let g_slack = snap.gauge("pred:g", "diag.bound.slack");
    assert!(
        g_slack <= 40,
        "pred:g bound slack {g_slack} exceeds the band-width envelope"
    );
}

// ---------------------------------------------------------------------
// Soundness proptest: random safe programs × random topologies
// ---------------------------------------------------------------------

/// Small safe program templates covering the analysis regimes: a
/// tree-routed join, a negation filter, a two-hop chain, and a windowed
/// non-XY recursion (finite only under the Herbrand windowed-domain
/// refinement).
const TEMPLATES: [&str; 4] = [
    "\
.window r1 60000. .window r2 60000.
.output q.
q(X, Y) :- r1(X, T), r2(Y, T).
",
    "\
.window r1 60000. .window r2 60000.
.output q.
q(X, T) :- r1(X, T), not r2(X, T).
",
    "\
.window r1 60000. .window r2 60000.
.output q.
s(X, Y) :- r1(X, T), r2(T, Y).
q(X) :- s(X, Y).
",
    "\
.window r1 60000.
.output q.
q(pair(A, B)) :- r1(A, B).
q(pair(B, A)) :- q(pair(A, B)).
",
];

fn random_run(
    template: usize,
    geometric: bool,
    m: u32,
    seed: u64,
    vals: &[(i64, i64)],
) -> Deployment {
    let topo = if geometric {
        // Dense enough to stay connected at small n; the constructor
        // retries placements until the graph is connected.
        Topology::random_geometric((m * m) as usize, 10.0, 4.5, seed)
            .expect("geometric topology must connect")
    } else {
        Topology::square_grid(m)
    };
    let n_nodes = topo.len();
    let cfg = DeployConfig {
        sim: SimConfig {
            seed,
            ..SimConfig::default()
        },
        ..DeployConfig::default()
    };
    let mut d =
        Deployment::new(TEMPLATES[template], BuiltinRegistry::standard(), topo, cfg).unwrap();
    let events: Vec<WorkloadEvent> = vals
        .iter()
        .enumerate()
        .map(|(i, &(a, b))| WorkloadEvent {
            at: 100 + 50 * i as u64,
            node: NodeId(((seed as usize + i * 7) % n_nodes) as u32),
            pred: Symbol::intern(if i % 2 == 0 { "r1" } else { "r2" }),
            tuple: Tuple::new(vec![Term::Int(a), Term::Int(b)]),
            kind: UpdateKind::Insert,
        })
        .collect();
    d.schedule_all(events);
    d.run(4_000_000);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every random (program, topology, workload) combination, the
    /// frontier bounds dominate the observed per-node peaks and the
    /// per-kind communication envelopes dominate the observed traffic —
    /// i.e. `check_static_bounds` stays green off the beaten path too.
    #[test]
    fn frontier_bounds_dominate_random_runs(
        template in 0usize..TEMPLATES.len(),
        geometric in any::<bool>(),
        m in 3u32..5,
        seed in 0u64..512,
        vals in proptest::collection::vec((0i64..6, 0i64..6), 4..12),
    ) {
        let d = random_run(template, geometric, m, seed, &vals);
        let report = invariants::check_static_bounds(&d);
        prop_assert!(report.ok(), "template {template}: {report}");

        // Direct form of the soundness claim, independent of the 2×
        // replica/owner slack inside the invariant: the whole-network
        // bound is never below what any single node stored.
        let params = BoundParams {
            nodes: d.sim.topology().len() as u64,
            default_events: 0,
            events: d.injected_events().clone(),
        };
        let fr = frontier(&d.prog.analysis);
        for id in d.sim.topology().nodes() {
            for (&pred, &peak) in &d.sim.node(id).peak_pred_stored {
                let Some(t) = fr.bounds.get(&pred).and_then(|b| b.eval(&params)) else {
                    continue;
                };
                prop_assert!(
                    peak as u64 <= 2 * t,
                    "template {template}, {pred}@{id}: peak {peak} over bound {t}"
                );
            }
        }
    }
}
