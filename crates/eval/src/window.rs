//! Sliding-window timing discipline (Secs. III-A and IV-B).
//!
//! Collects the delay/expiry arithmetic shared by the centralized engine's
//! `advance_time` and the distributed runtime:
//!
//! * join-computation for an update with timestamp τ starts after
//!   `τ + τs + τc`;
//! * a replica is kept for `(τs + τc) + τj + (τw + τc)` after generation;
//! * a probe at τ sees tuples with `gen ∈ (τ − τw, τ]` and no tombstone
//!   `< τ` (Theorem 3).

/// Timing parameters, all in simulated milliseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpiryPolicy {
    /// Upper bound on storage-phase completion (τs).
    pub tau_s: u64,
    /// Upper bound on join-computation-phase completion (τj).
    pub tau_j: u64,
    /// Maximum clock skew between any two nodes (τc).
    pub tau_c: u64,
    /// Sliding-window range (τw); `None` = unbounded stream.
    pub window: Option<u64>,
}

impl ExpiryPolicy {
    /// Delay between the start of the storage phase and the start of the
    /// join-computation phase: `τs + τc` (Sec. IV-A, "Handling Simultaneous
    /// Insertions and Deletions").
    pub fn join_delay(&self) -> u64 {
        self.tau_s + self.tau_c
    }

    /// How long a replica must be retained after its generation timestamp:
    /// `(τs + τc) + τj + (τw + τc)` (Sec. IV-B, "Tuple Expiry"). Unbounded
    /// streams never expire.
    pub fn retention(&self) -> Option<u64> {
        self.window
            .map(|w| (self.tau_s + self.tau_c) + self.tau_j + (w + self.tau_c))
    }

    /// Absolute expiry instant for a tuple generated at `gen_ts`.
    pub fn expires_at(&self, gen_ts: u64) -> Option<u64> {
        self.retention().map(|r| gen_ts + r)
    }

    /// Is a tuple generated at `gen_ts` within the *query* window of a probe
    /// at `tau`? (The retention window is longer than the query window; the
    /// probe must still apply the query window, Theorem 3 condition (i).)
    pub fn in_query_window(&self, gen_ts: u64, tau: u64) -> bool {
        if gen_ts > tau {
            return false;
        }
        match self.window {
            Some(w) => gen_ts + w > tau,
            None => true,
        }
    }
}

impl Default for ExpiryPolicy {
    fn default() -> Self {
        ExpiryPolicy {
            tau_s: 500,
            tau_j: 1_000,
            tau_c: 50,
            window: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_and_retention_formulas() {
        let p = ExpiryPolicy {
            tau_s: 500,
            tau_j: 1000,
            tau_c: 50,
            window: Some(30_000),
        };
        assert_eq!(p.join_delay(), 550);
        // (τs + τc) + τj + (τw + τc) = 550 + 1000 + 30050
        assert_eq!(p.retention(), Some(31_600));
        assert_eq!(p.expires_at(1_000), Some(32_600));
    }

    #[test]
    fn unbounded_stream_never_expires() {
        let p = ExpiryPolicy {
            window: None,
            ..ExpiryPolicy::default()
        };
        assert_eq!(p.retention(), None);
        assert!(p.in_query_window(0, u64::MAX / 2));
    }

    #[test]
    fn query_window_tighter_than_retention() {
        let p = ExpiryPolicy {
            tau_s: 500,
            tau_j: 1000,
            tau_c: 50,
            window: Some(1_000),
        };
        // Retention keeps the tuple long after the query window closes.
        assert!(p.in_query_window(0, 999));
        assert!(!p.in_query_window(0, 1_000));
        assert!(p.expires_at(0).unwrap() > 1_000);
        // Future tuples are never in window.
        assert!(!p.in_query_window(10, 5));
    }
}
