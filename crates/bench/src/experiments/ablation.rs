//! Fig. 11 (maintenance-strategy ablation: set-of-derivations vs counting
//! vs delete-rederive — the three options of Sec. IV-A) and Fig. 12
//! (magic-set transformation ablation, Sec. V).

use crate::table::{f2, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensorlog_eval::counting::CountingEngine;
use sensorlog_eval::rederive::RederiveEngine;
use sensorlog_eval::relation::Database;
use sensorlog_eval::{Engine, IncrementalEngine, Update};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::magic::{magic_transform, Query};
use sensorlog_logic::{analyze, parse_program, Atom, Symbol, Term, Tuple};
use std::time::Instant;

/// Coverage by *any* suppressor in the epoch group: cov tuples accumulate
/// one derivation per suppressor, exposing the space gap between
/// set-of-derivations and counting (Sec. IV-A: "space overhead … tolerable
/// if tuples have only a few derivations").
const UNCOV: &str = r#"
    cov(V, K) :- sight(V, K), supp(S, K).
    alert(V, K) :- not cov(V, K), sight(V, K).
"#;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

fn tup2(a: i64, b: i64) -> Tuple {
    Tuple::new(vec![Term::Int(a), Term::Int(b)])
}

/// The mixed workload: n nodes sight over `epochs` epochs; suppressors come
/// and go. Returns (updates, #deletes).
fn mixed_updates(n: i64, epochs: i64, seed: u64) -> (Vec<Update>, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut deletes = 0;
    let mut ts = 0u64;
    for k in 1..=epochs {
        for v in 0..n {
            ts += 1;
            out.push(Update::insert(sym("sight"), tup2(v, k), ts));
            if v % 3 == 0 {
                ts += 1;
                out.push(Update::insert(sym("supp"), tup2(v, k), ts));
                // The last epoch loses *all* its suppressors (so alerts
                // actually fire); earlier epochs lose half.
                if k == epochs || rng.gen::<f64>() < 0.5 {
                    ts += 1;
                    out.push(Update::delete(sym("supp"), tup2(v, k), ts + 1000));
                    deletes += 1;
                }
            }
        }
    }
    out.sort_by_key(|u| u.ts);
    (out, deletes)
}

/// Fig. 11: body-evaluation work and state size per maintenance strategy
/// on the negation query (the paper's qualitative comparison of Sec. IV-A,
/// quantified).
pub fn fig11() -> Table {
    let mut t = Table::new(
        "fig11",
        "maintenance ablation: work (body evals) and state per strategy",
        &["strategy", "body evals", "state items", "final alerts"],
    );
    let (updates, _) = mixed_updates(60, 4, 3);

    // Set of derivations (the paper's choice).
    let mut sod = IncrementalEngine::from_source(UNCOV, BuiltinRegistry::standard()).unwrap();
    for u in updates.clone() {
        sod.apply(u).unwrap();
    }
    t.row(vec![
        "set-of-derivations".into(),
        sod.stats.body_evals.to_string(),
        sod.derivation_count().to_string(),
        sod.db.len_of(sym("alert")).to_string(),
    ]);

    // Counting.
    let mut cnt = CountingEngine::from_source(UNCOV, BuiltinRegistry::standard()).unwrap();
    for u in updates.clone() {
        cnt.apply(u).unwrap();
    }
    t.row(vec![
        "counting".into(),
        cnt.body_evals.to_string(),
        cnt.state_size().to_string(),
        cnt.db.len_of(sym("alert")).to_string(),
    ]);

    // Delete-rederive.
    let mut dred = RederiveEngine::from_source(UNCOV, BuiltinRegistry::standard()).unwrap();
    for u in updates.clone() {
        dred.apply(u).unwrap();
    }
    t.row(vec![
        "delete-rederive".into(),
        dred.body_evals.to_string(),
        dred.state_size().to_string(),
        dred.db.len_of(sym("alert")).to_string(),
    ]);

    // All three must agree on the final result.
    let a = sod.db.sorted(sym("alert"));
    assert_eq!(a, cnt.db.sorted(sym("alert")), "counting diverged");
    assert_eq!(a, dred.db.sorted(sym("alert")), "rederive diverged");
    t
}

/// Fig. 12: magic sets — evaluation cost for a bound reachability query
/// with and without the transformation.
pub fn fig12() -> Table {
    let mut t = Table::new(
        "fig12",
        "magic-set ablation: t(a, Y)? over random graphs",
        &[
            "edges",
            "full tuples",
            "full ms",
            "magic tuples",
            "magic ms",
            "answers",
        ],
    );
    const TC: &str = r#"
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, Z), t(Z, Y).
    "#;
    for n_edges in [500usize, 2_000] {
        let mut rng = StdRng::seed_from_u64(8);
        // Forward DAG: i -> i+1..i+3 — all-pairs reachability is O(n²),
        // while the query constant attaches near the end so its reachable
        // cone is small (where magic pays off).
        let n_nodes = (n_edges / 2).max(20) as i64;
        let mut edb = Database::new();
        for _ in 0..n_edges {
            let a = rng.gen_range(0..n_nodes - 1);
            let b = (a + rng.gen_range(1..=3)).min(n_nodes - 1);
            edb.insert(sym("e"), tup2(a, b));
        }
        edb.insert(
            sym("e"),
            Tuple::new(vec![Term::atom("a"), Term::Int(n_nodes - 10)]),
        );

        let prog = parse_program(TC).unwrap();
        let reg = BuiltinRegistry::standard();

        // Full evaluation.
        let analysis = analyze(&prog, &reg).unwrap();
        let engine = Engine::new(analysis, reg.clone());
        let t0 = Instant::now();
        let full = engine.run(&edb).unwrap();
        let full_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let full_tuples = full.len_of(sym("t"));
        let answers = full
            .sorted(sym("t"))
            .into_iter()
            .filter(|tp| tp.get(0) == Term::atom("a"))
            .count();

        // Magic evaluation.
        let q = Query {
            atom: Atom::new("t", vec![Term::atom("a"), Term::var("Y")]),
        };
        let magic = magic_transform(&prog, &q);
        assert!(magic.applied);
        let mut magic_edb = edb.clone();
        for (p, args) in &magic.seeds {
            magic_edb.insert(*p, Tuple::new(args.clone()));
        }
        let m_analysis = analyze(&magic.program, &reg).unwrap();
        let m_engine = Engine::new(m_analysis, reg.clone());
        let t0 = Instant::now();
        let magical = m_engine.run(&magic_edb).unwrap();
        let magic_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let magic_tuples: usize = magical
            .preds()
            .filter(|p| p.as_str().starts_with("t__") || p.as_str().starts_with("m_t__"))
            .map(|p| magical.len_of(p))
            .sum();
        // The adorned answer predicate also holds non-query t facts used
        // during evaluation; the query answers are those with X = a.
        let magic_answers = magical
            .sorted(magic.answer_pred)
            .into_iter()
            .filter(|tp| tp.get(0) == Term::atom("a"))
            .count();
        assert_eq!(magic_answers, answers, "magic must preserve the answers");

        t.row(vec![
            n_edges.to_string(),
            full_tuples.to_string(),
            f2(full_ms),
            magic_tuples.to_string(),
            f2(magic_ms),
            answers.to_string(),
        ]);
    }
    t
}
