//! First-order terms with function symbols.
//!
//! The paper's framework extends Datalog with function symbols (Sec. II-B):
//! a term is a constant, a variable, or `f(t1, …, tn)`. Lists are sugar over
//! the function symbols `$cons`/`$nil` (the parser accepts `[a, b | T]`).

use crate::intern::{self, ConstId};
use crate::symbol::Symbol;
use std::cmp::Ordering;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A 64-bit float with total ordering and stable hashing.
///
/// NaN compares greater than everything and equal to itself; `-0.0` is
/// canonicalized to `0.0` so that equal values hash equally.
#[derive(Copy, Clone, Debug)]
pub struct F64(f64);

impl F64 {
    pub fn new(v: f64) -> F64 {
        if v == 0.0 {
            F64(0.0)
        } else {
            F64(v)
        }
    }
    pub fn get(self) -> f64 {
        self.0
    }
    fn key(self) -> u64 {
        if self.0.is_nan() {
            u64::MAX
        } else {
            let bits = self.0.to_bits();
            if bits >> 63 == 0 {
                bits | (1 << 63)
            } else {
                !bits
            }
        }
    }
    /// Total-order bits: `sort_bits(a) < sort_bits(b)` iff `a < b`. Used by
    /// the constant pool's order-preserving sort keys.
    pub fn sort_bits(self) -> u64 {
        self.key()
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for F64 {}
impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}
impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

/// Function symbol used by the list sugar for cons cells. Cached: the list
/// helpers call this per cons cell, so it must not re-intern every time.
pub fn cons_sym() -> Symbol {
    static CONS: OnceLock<Symbol> = OnceLock::new();
    *CONS.get_or_init(|| Symbol::intern("$cons"))
}
/// Function symbol used by the list sugar for the empty list (cached).
pub fn nil_sym() -> Symbol {
    static NIL: OnceLock<Symbol> = OnceLock::new();
    *NIL.get_or_init(|| Symbol::intern("$nil"))
}

/// A first-order term.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// Integer constant. Timestamps and stage arguments are integers.
    Int(i64),
    /// Float constant (sensor readings, distances).
    Float(F64),
    /// String constant, written `"enemy"`.
    Str(Symbol),
    /// Symbolic constant, written lowercase: `enemy`.
    Atom(Symbol),
    /// Variable, written capitalized: `X`, `L1`. The anonymous variable `_`
    /// is expanded by the parser into fresh variables, so no `Var` ever
    /// holds `_` after parsing.
    Var(Symbol),
    /// Function application `f(t1, …, tn)`; also encodes lists and
    /// arithmetic (`add`, `sub`, `mul`, `div`, `mod`, `neg`).
    App(Symbol, Arc<[Term]>),
}

impl Term {
    pub fn float(v: f64) -> Term {
        Term::Float(F64::new(v))
    }
    pub fn str(s: &str) -> Term {
        Term::Str(Symbol::intern(s))
    }
    pub fn atom(s: &str) -> Term {
        Term::Atom(Symbol::intern(s))
    }
    pub fn var(s: &str) -> Term {
        Term::Var(Symbol::intern(s))
    }
    pub fn app(f: &str, args: Vec<Term>) -> Term {
        Term::App(Symbol::intern(f), args.into())
    }

    /// The empty list `[]`. Returns a clone of a cached static — the old
    /// implementation allocated a fresh `Arc<[Term]>` on every call.
    pub fn nil() -> Term {
        static NIL: OnceLock<Term> = OnceLock::new();
        NIL.get_or_init(|| Term::App(nil_sym(), Arc::from(Vec::new())))
            .clone()
    }

    /// A cons cell `[head | tail]`.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::App(cons_sym(), Arc::from(vec![head, tail]))
    }

    /// Build a proper list from `items`, optionally ending in `tail`
    /// (for `[a, b | T]` notation).
    pub fn list(items: Vec<Term>, tail: Option<Term>) -> Term {
        let mut acc = tail.unwrap_or_else(Term::nil);
        for item in items.into_iter().rev() {
            acc = Term::cons(item, acc);
        }
        acc
    }

    /// If this term is a proper list, return its elements.
    pub fn as_list(&self) -> Option<Vec<&Term>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Term::App(f, args) if *f == nil_sym() && args.is_empty() => return Some(out),
                Term::App(f, args) if *f == cons_sym() && args.len() == 2 => {
                    out.push(&args[0]);
                    cur = &args[1];
                }
                _ => return None,
            }
        }
    }

    /// True if the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::App(_, args) => args.iter().all(Term::is_ground),
            _ => true,
        }
    }

    /// Collect the variables occurring in this term into `out` (in order of
    /// first occurrence, duplicates skipped).
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Term::Var(v) if !out.contains(v) => {
                out.push(*v);
            }
            Term::App(_, args) => {
                for a in args.iter() {
                    a.collect_vars(out);
                }
            }
            _ => {}
        }
    }

    /// All variables of the term.
    pub fn vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// Structural size (number of nodes); used to bound recursion depth in
    /// diagnostics and as a crude cost metric for message sizing.
    pub fn size(&self) -> usize {
        match self {
            Term::App(_, args) => 1 + args.iter().map(Term::size).sum::<usize>(),
            _ => 1,
        }
    }

    /// Approximate serialized size in bytes, used by the simulator's
    /// message-cost accounting.
    pub fn byte_size(&self) -> usize {
        match self {
            Term::Int(_) | Term::Float(_) => 8,
            Term::Str(s) | Term::Atom(s) => 2 + s.as_str().len(),
            Term::Var(_) => 2,
            Term::App(f, args) => {
                2 + f.as_str().len() + args.iter().map(Term::byte_size).sum::<usize>()
            }
        }
    }

    /// Numeric view for comparisons: integers widen to floats when compared
    /// against floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Term::Int(i) => Some(*i as f64),
            Term::Float(f) => Some(f.get()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Term::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(i) => write!(f, "{i}"),
            Term::Float(x) => write!(f, "{}", x.get()),
            Term::Str(s) => write!(f, "{:?}", s.as_str()),
            Term::Atom(s) => write!(f, "{s}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::App(_, _) => {
                if let Some(items) = self.as_list() {
                    write!(f, "[")?;
                    for (i, t) in items.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, "]")
                } else if let Term::App(sym, args) = self {
                    // Improper list `[h | t]`.
                    if *sym == cons_sym() && args.len() == 2 {
                        return write!(f, "[{} | {}]", args[0], args[1]);
                    }
                    write!(f, "{sym}(")?;
                    for (i, t) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, ")")
                } else {
                    unreachable!()
                }
            }
        }
    }
}

/// Arguments stored inline before spilling to a shared heap allocation.
/// Seven ids keep the inline variant at 32 bytes; the paper's programs top
/// out at arity 4.
const TUPLE_INLINE: usize = 7;

#[derive(Clone)]
enum TupleRepr {
    Inline {
        len: u8,
        ids: [ConstId; TUPLE_INLINE],
    },
    Heap(Arc<[ConstId]>),
}

/// A ground tuple: the arguments of a fact, stored as a fixed-width array of
/// interned constant ids (flat representation). Cheap to clone, compare and
/// hash — id operations only; the boxed [`Term`] view is materialized on
/// demand via [`Tuple::terms`]/[`Tuple::get`] at the resolve boundary.
///
/// Ordering is by *value* (each column's pool sort key), reproducing the
/// old `Arc<[Term]>` derived order exactly, so canonical iteration order —
/// and with it every pinned trace journal — is unchanged.
pub struct Tuple(TupleRepr);

impl Clone for Tuple {
    fn clone(&self) -> Tuple {
        Tuple(self.0.clone())
    }
}

impl Tuple {
    /// Construct from ground terms, interning each into the constant pool.
    /// Panics if any term is non-ground: facts are ground by construction
    /// everywhere upstream.
    pub fn new(terms: Vec<Term>) -> Tuple {
        debug_assert!(terms.iter().all(Term::is_ground), "non-ground fact");
        let mut ids = [0 as ConstId; TUPLE_INLINE];
        if terms.len() <= TUPLE_INLINE {
            for (slot, t) in ids.iter_mut().zip(terms.iter()) {
                *slot = intern::intern_term(t).expect("non-ground fact");
            }
            Tuple(TupleRepr::Inline {
                len: terms.len() as u8,
                ids,
            })
        } else {
            let v: Vec<ConstId> = terms
                .iter()
                .map(|t| intern::intern_term(t).expect("non-ground fact"))
                .collect();
            Tuple(TupleRepr::Heap(v.into()))
        }
    }

    /// Construct directly from interned ids (the flat evaluation path).
    pub fn from_ids(ids_vec: Vec<ConstId>) -> Tuple {
        if ids_vec.len() <= TUPLE_INLINE {
            let mut ids = [0 as ConstId; TUPLE_INLINE];
            ids[..ids_vec.len()].copy_from_slice(&ids_vec);
            Tuple(TupleRepr::Inline {
                len: ids_vec.len() as u8,
                ids,
            })
        } else {
            Tuple(TupleRepr::Heap(ids_vec.into()))
        }
    }

    pub fn arity(&self) -> usize {
        self.ids().len()
    }

    /// The interned argument ids — the flat hot-path view.
    #[inline]
    pub fn ids(&self) -> &[ConstId] {
        match &self.0 {
            TupleRepr::Inline { len, ids } => &ids[..*len as usize],
            TupleRepr::Heap(v) => v,
        }
    }

    /// Interned id of argument `i`.
    #[inline]
    pub fn id(&self, i: usize) -> ConstId {
        self.ids()[i]
    }

    /// Materialize all arguments as boxed terms. Counted as one resolve op —
    /// boundary callers (display, wire encoding, lineage export) should wrap
    /// in [`intern::boundary`].
    pub fn terms(&self) -> Vec<Term> {
        intern::resolve_slice(self.ids())
    }

    /// Materialize argument `i` as a boxed term (counted resolve).
    pub fn get(&self, i: usize) -> Term {
        intern::resolve(self.id(i))
    }

    /// Sum of the argument byte sizes (message-cost accounting). Reads the
    /// pool's cached sizes; byte-identical to the old boxed computation.
    pub fn byte_size(&self) -> usize {
        self.ids()
            .iter()
            .map(|&id| intern::entry(id).byte_size as usize)
            .sum()
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Tuple) -> bool {
        self.ids() == other.ids()
    }
}
impl Eq for Tuple {}

impl std::hash::Hash for Tuple {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.ids().hash(state);
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Tuple) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Tuple) -> Ordering {
        let (a, b) = (self.ids(), other.ids());
        for (&x, &y) in a.iter().zip(b.iter()) {
            match intern::cmp_ids(x, y) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        a.len().cmp(&b.len())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        intern::boundary(|| {
            write!(f, "(")?;
            for (i, t) in self.terms().iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")
        })
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<Vec<Term>> for Tuple {
    fn from(v: Vec<Term>) -> Tuple {
        Tuple::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_roundtrip() {
        let l = Term::list(vec![Term::Int(1), Term::Int(2), Term::Int(3)], None);
        let items = l.as_list().expect("proper list");
        assert_eq!(items.len(), 3);
        assert_eq!(*items[1], Term::Int(2));
        assert_eq!(l.to_string(), "[1, 2, 3]");
    }

    #[test]
    fn improper_list_display() {
        let l = Term::cons(Term::Int(1), Term::var("T"));
        assert!(l.as_list().is_none());
        assert_eq!(l.to_string(), "[1 | T]");
    }

    #[test]
    fn groundness() {
        assert!(Term::Int(5).is_ground());
        assert!(!Term::var("X").is_ground());
        let t = Term::app("f", vec![Term::Int(1), Term::var("X")]);
        assert!(!t.is_ground());
        assert_eq!(t.vars(), vec![Symbol::intern("X")]);
    }

    #[test]
    fn var_collection_dedups_and_orders() {
        let t = Term::app(
            "f",
            vec![
                Term::var("X"),
                Term::app("g", vec![Term::var("Y"), Term::var("X")]),
            ],
        );
        assert_eq!(t.vars(), vec![Symbol::intern("X"), Symbol::intern("Y")]);
    }

    #[test]
    fn float_total_order() {
        let nan = F64::new(f64::NAN);
        assert_eq!(nan, nan);
        assert!(F64::new(1.0) < F64::new(2.0));
        assert!(F64::new(-1.0) < F64::new(0.0));
        assert!(F64::new(2.0) < nan);
        assert_eq!(F64::new(0.0), F64::new(-0.0));
    }

    #[test]
    fn float_hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Term::float(0.0));
        assert!(s.contains(&Term::float(-0.0)));
    }

    #[test]
    fn tuple_ordering_deterministic() {
        let a = Tuple::new(vec![Term::Int(1), Term::atom("a")]);
        let b = Tuple::new(vec![Term::Int(1), Term::atom("b")]);
        assert!(a < b);
        assert_eq!(a.to_string(), "(1, a)");
    }

    #[test]
    fn term_size_and_bytes() {
        let t = Term::app("f", vec![Term::Int(1), Term::str("xy")]);
        assert_eq!(t.size(), 3);
        assert!(t.byte_size() > 8);
    }
}
