//! Fig. 15: finalize-holddown ablation — the design choice DESIGN.md calls
//! out. Owners debounce liveness transitions ("we need to wait for an
//! appropriate time before actually finalizing a derived fact", Sec. IV-C),
//! with XY components staggered so retractors (`jp`) settle before the
//! tuples they block (`j`) propagate. Turning the stagger off lets
//! transient insert/retract pairs escape into the network — correct at
//! quiescence, but paid for in messages.

use crate::table::Table;
use sensorlog_core::deploy::{DeployConfig, Deployment};
use sensorlog_core::workload::graph_edges;
use sensorlog_core::{PlanTiming, RtConfig, Strategy};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::{Symbol, Term};
use sensorlog_netsim::Topology;

const LOGIC_J: &str = r#"
    .output j.
    j(0, 0).
    j(X, 1) :- g(0, X).
    jp(Y, D + 1) :- j(Y, D'), (D + 1) > D', j(X, D), g(X, Y).
    j(Y, D + 1) :- g(X, Y), j(X, D), not jp(Y, D + 1).
"#;

/// Returns (messages, quiesced?, tree correct at cutoff).
fn run_with(timing: PlanTiming, m: u32) -> (u64, bool, bool) {
    let topo = Topology::square_grid(m);
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        plan: timing,
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(LOGIC_J, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    d.schedule_all(graph_edges(&topo, 100, 200));
    // Hard cutoff: without the holddown, transient insert/retract pairs can
    // chase each other up the stages indefinitely — the very failure mode
    // the debouncing exists to prevent. 60 simulated seconds is ~2x the
    // staggered convergence time.
    d.run(60_000);
    let quiesced = d.sim.is_quiescent();
    let results = d.results(Symbol::intern("j"));
    // Correct iff every node appears exactly at its BFS depth.
    let mut ok = true;
    for node in topo.nodes() {
        let (x, y) = topo.grid_coords(node).unwrap();
        let want = (x + y) as i64;
        let depths: Vec<i64> = results
            .iter()
            .filter(|t| t.get(0) == Term::Int(node.0 as i64))
            .map(|t| t.get(1).as_i64().unwrap())
            .collect();
        if depths.is_empty() || depths.iter().any(|&d| d != want) {
            ok = false;
        }
    }
    (d.metrics().total_tx(), quiesced, ok)
}

/// Fig. 15: logicJ on a 4×4 grid under three holddown settings.
pub fn fig15() -> Table {
    let mut t = Table::new(
        "fig15",
        "finalize-holddown ablation (logicJ, 4x4 grid)",
        &["holddown", "msgs @60s", "quiesced", "tree correct"],
    );
    for (label, timing) in [
        (
            "staggered (default)",
            PlanTiming {
                holddown_base: 100,
                xy_stagger: 2_000,
            },
        ),
        (
            "flat 100ms",
            PlanTiming {
                holddown_base: 100,
                xy_stagger: 0,
            },
        ),
        (
            "none (1ms)",
            PlanTiming {
                holddown_base: 1,
                xy_stagger: 0,
            },
        ),
    ] {
        let (msgs, quiesced, ok) = run_with(timing, 4);
        t.row(vec![
            label.into(),
            msgs.to_string(),
            if quiesced { "yes" } else { "NO" }.into(),
            if ok { "yes" } else { "NO" }.into(),
        ]);
    }
    t
}
