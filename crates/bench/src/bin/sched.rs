//! Scheduler + join microbenchmarks, exported as `BENCH_sched.json`.
//!
//! ```text
//! sched [--quick] [--out BENCH_sched.json]
//! ```
//!
//! Two comparisons, matching the hot paths the timer-wheel/index work
//! optimized:
//!
//! * **queue** — the event queue under the simulator's hold model (pop the
//!   head, push a successor at `head + delay` with delay drawn from the
//!   bounded per-hop window), `BinaryHeap` vs `TimerWheel`, at pending
//!   populations of 100 / 1k / 10k / 100k events ("nodes": steady state is
//!   roughly one in-flight event per node). Also pure enqueue (fill from
//!   empty) and pure dequeue (drain) ops/sec.
//! * **probe** — `Relation::select` through a maintained hash index vs the
//!   filtered-scan baseline, ops/sec at growing relation sizes.
//! * **join** — end-to-end semi-naive evaluation of the logicH / logicJ
//!   shortest-path-tree programs on a grid EDB, `EvalConfig::use_index`
//!   on vs off, wall-clock speedup.
//!
//! `--quick` shrinks every dimension so CI can prove the harness end-to-end
//! (runs, exits 0, JSON parses) in well under a second; the committed
//! `BENCH_sched.json` comes from a full run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensorlog_eval::relation::{Relation, TupleMeta};
use sensorlog_eval::{Database, Engine, EvalConfig};
use sensorlog_logic::builtin::BuiltinRegistry;
use sensorlog_logic::intern;
use sensorlog_logic::{Symbol, Term, Tuple};
use sensorlog_netsim::{SimTime, TimerWheel, Topology};
use std::collections::BinaryHeap;
use std::process::ExitCode;
use std::time::Instant;

const LOGIC_H: &str = r#"
    .output h.
    h(0, 0, 0).
    h(0, X, 1) :- g(0, X).
    hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
    h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
"#;

const LOGIC_J: &str = r#"
    .output j.
    j(0, 0).
    j(X, 1) :- g(0, X).
    jp(Y, D + 1) :- j(Y, D'), (D + 1) > D', j(X, D), g(X, Y).
    j(Y, D + 1) :- g(X, Y), j(X, D), not jp(Y, D + 1).
"#;

/// The bounded per-hop delay window the simulator draws from
/// (`SimConfig::hop_delay` default), which is what makes the calendar-queue
/// layout effective: successors land within a few ring slots of the head.
const DELAY: (u64, u64) = (10, 40);

/// One event-queue backend under test.
trait Queue {
    fn push(&mut self, at: SimTime, seq: u64);
    fn pop(&mut self) -> Option<(SimTime, u64)>;
}

struct Heap(BinaryHeap<std::cmp::Reverse<(SimTime, u64)>>);

impl Queue for Heap {
    fn push(&mut self, at: SimTime, seq: u64) {
        self.0.push(std::cmp::Reverse((at, seq)));
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.0.pop().map(|std::cmp::Reverse(x)| x)
    }
}

struct Wheel(TimerWheel<()>);

impl Queue for Wheel {
    fn push(&mut self, at: SimTime, seq: u64) {
        self.0.push(at, seq, ());
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.0.pop().map(|(at, seq, ())| (at, seq))
    }
}

struct QueueRow {
    nodes: usize,
    backend: &'static str,
    hold_ops_per_sec: f64,
    enqueue_ops_per_sec: f64,
    dequeue_ops_per_sec: f64,
}

/// Hold model: pop the earliest event, schedule its successor a bounded
/// delay later. `ops` pops+pushes at a steady pending population of `n`.
fn bench_queue<Q: Queue>(mut mk: impl FnMut() -> Q, n: usize, ops: usize) -> (f64, f64, f64) {
    let mut rng = StdRng::seed_from_u64(0xBE0C + n as u64);
    let init: Vec<(SimTime, u64)> = (0..n)
        .map(|i| (rng.gen_range(1_000..1_000 + DELAY.1), i as u64))
        .collect();

    // Steady-state hold model.
    let mut q = mk();
    for &(at, seq) in &init {
        q.push(at, seq);
    }
    let mut seq = n as u64;
    let t0 = Instant::now();
    for _ in 0..ops {
        let (at, _) = q.pop().expect("hold model never drains");
        seq += 1;
        q.push(at + rng.gen_range(DELAY.0..=DELAY.1), seq);
    }
    let hold = ops as f64 / t0.elapsed().as_secs_f64();

    // Pure enqueue (fill from empty) and pure dequeue (drain), repeated so
    // small populations still accumulate measurable work.
    let rounds = (200_000 / n).max(1);
    let mut enq_s = 0.0;
    let mut deq_s = 0.0;
    for _ in 0..rounds {
        let mut q = mk();
        let t0 = Instant::now();
        for &(at, seq) in &init {
            q.push(at, seq);
        }
        enq_s += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        while q.pop().is_some() {}
        deq_s += t0.elapsed().as_secs_f64();
    }
    let total = (rounds * n) as f64;
    (hold, total / enq_s, total / deq_s)
}

struct ProbeRow {
    tuples: usize,
    indexed_ops_per_sec: f64,
    scan_ops_per_sec: f64,
}

/// `Relation::select` through a maintained index vs a filtered scan.
fn bench_probe(tuples: usize, probes: usize) -> ProbeRow {
    let mut indexed = Relation::new();
    indexed.register_index(&[0]);
    let mut scan = Relation::new();
    let keys = (tuples / 4).max(1) as i64;
    for i in 0..tuples {
        let t = Tuple::new(vec![Term::Int(i as i64 % keys), Term::Int(i as i64)]);
        indexed.insert(t.clone(), TupleMeta::default());
        scan.insert(t, TupleMeta::default());
    }
    let mut rng = StdRng::seed_from_u64(0x9806E);
    let mut out = Vec::new();
    // Warm: build the maintained index before timing.
    indexed.select(&[0], &[intern::intern_int(0)], &mut out);

    let t0 = Instant::now();
    for _ in 0..probes {
        out.clear();
        indexed.select(
            &[0],
            &[intern::intern_int(rng.gen_range(0..keys))],
            &mut out,
        );
    }
    let idx_ops = probes as f64 / t0.elapsed().as_secs_f64();

    // Scan baseline: fewer probes (each is O(tuples)), same key stream.
    let mut rng = StdRng::seed_from_u64(0x9806E);
    let scan_probes = (probes / 50).max(10);
    let t0 = Instant::now();
    for _ in 0..scan_probes {
        out.clear();
        let key = intern::intern_int(rng.gen_range(0..keys));
        out.extend(scan.tuples().filter(|t| t.id(0) == key).cloned());
    }
    let scan_ops = scan_probes as f64 / t0.elapsed().as_secs_f64();
    ProbeRow {
        tuples,
        indexed_ops_per_sec: idx_ops,
        scan_ops_per_sec: scan_ops,
    }
}

struct JoinRow {
    program: &'static str,
    grid: u32,
    indexed_ms: f64,
    scan_ms: f64,
    index_hits: u64,
    index_builds: u64,
}

/// Semi-naive logicH/logicJ on an m×m grid EDB, indexed vs forced-scan.
fn bench_join(program: &'static str, src: &str, out_pred: &str, m: u32) -> JoinRow {
    let topo = Topology::square_grid(m);
    let mut edb = Database::new();
    let g = Symbol::intern("g");
    for a in topo.nodes() {
        for &b in topo.neighbors(a) {
            edb.insert(
                g,
                Tuple::new(vec![Term::Int(a.0 as i64), Term::Int(b.0 as i64)]),
            );
        }
    }
    let run = |use_index: bool| {
        let mut engine =
            Engine::from_source(src, BuiltinRegistry::standard()).expect("bench program compiles");
        engine.config = EvalConfig {
            use_index,
            ..EvalConfig::default()
        };
        let t0 = Instant::now();
        let out = engine.run(&edb).expect("bench program evaluates");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            out.len_of(Symbol::intern(out_pred)) > 0,
            "join bench produced no output"
        );
        (ms, out.index_stats())
    };
    let (indexed_ms, stats) = run(true);
    let (scan_ms, _) = run(false);
    JoinRow {
        program,
        grid: m,
        indexed_ms,
        scan_ms,
        index_hits: stats.hits,
        index_builds: stats.builds,
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_sched.json".into());

    let (sizes, hold_ops): (&[usize], usize) = if quick {
        (&[100, 1_000], 20_000)
    } else {
        (&[100, 1_000, 10_000, 100_000], 2_000_000)
    };

    let mut queue_rows: Vec<QueueRow> = Vec::new();
    for &n in sizes {
        let (h_hold, h_enq, h_deq) = bench_queue(|| Heap(BinaryHeap::new()), n, hold_ops);
        queue_rows.push(QueueRow {
            nodes: n,
            backend: "heap",
            hold_ops_per_sec: h_hold,
            enqueue_ops_per_sec: h_enq,
            dequeue_ops_per_sec: h_deq,
        });
        let (w_hold, w_enq, w_deq) = bench_queue(|| Wheel(TimerWheel::new()), n, hold_ops);
        queue_rows.push(QueueRow {
            nodes: n,
            backend: "wheel",
            hold_ops_per_sec: w_hold,
            enqueue_ops_per_sec: w_enq,
            dequeue_ops_per_sec: w_deq,
        });
        eprintln!(
            "queue n={n}: hold {:.2}x enq {:.2}x deq {:.2}x (wheel/heap)",
            w_hold / h_hold,
            w_enq / h_enq,
            w_deq / h_deq
        );
    }

    let probe_sizes: &[usize] = if quick {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let probe_rows: Vec<ProbeRow> = probe_sizes
        .iter()
        .map(|&t| bench_probe(t, if quick { 20_000 } else { 500_000 }))
        .collect();

    let join_grid = if quick { 6 } else { 14 };
    let join_rows = vec![
        bench_join("logicH", LOGIC_H, "h", join_grid),
        bench_join("logicJ", LOGIC_J, "j", join_grid),
    ];
    for j in &join_rows {
        eprintln!(
            "join {} grid={}: indexed {:.1} ms vs scan {:.1} ms ({:.2}x)",
            j.program,
            j.grid,
            j.indexed_ms,
            j.scan_ms,
            j.scan_ms / j.indexed_ms
        );
    }

    // Hand-rolled JSON — stable field order, no external deps.
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"bench\": \"sched\",\n  \"quick\": {quick},\n"));
    s.push_str(&format!(
        "  \"delay_model_ms\": [{}, {}],\n  \"queue\": [\n",
        DELAY.0, DELAY.1
    ));
    for (i, r) in queue_rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"nodes\": {}, \"backend\": \"{}\", \"hold_ops_per_sec\": {:.0}, \
             \"enqueue_ops_per_sec\": {:.0}, \"dequeue_ops_per_sec\": {:.0}}}{}\n",
            r.nodes,
            r.backend,
            r.hold_ops_per_sec,
            r.enqueue_ops_per_sec,
            r.dequeue_ops_per_sec,
            if i + 1 < queue_rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"queue_dequeue_speedup\": {");
    for (i, pair) in queue_rows.chunks(2).enumerate() {
        s.push_str(&format!(
            "{}\"{}\": {:.2}",
            if i > 0 { ", " } else { "" },
            pair[0].nodes,
            pair[1].dequeue_ops_per_sec / pair[0].dequeue_ops_per_sec
        ));
    }
    s.push_str("},\n  \"probe\": [\n");
    for (i, r) in probe_rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"tuples\": {}, \"indexed_ops_per_sec\": {:.0}, \"scan_ops_per_sec\": {:.0}}}{}\n",
            r.tuples,
            r.indexed_ops_per_sec,
            r.scan_ops_per_sec,
            if i + 1 < probe_rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"join\": [\n");
    for (i, r) in join_rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"program\": \"{}\", \"grid\": {}, \"indexed_ms\": {:.2}, \"scan_ms\": {:.2}, \
             \"speedup\": {:.2}, \"index_hits\": {}, \"index_builds\": {}}}{}\n",
            r.program,
            r.grid,
            r.indexed_ms,
            r.scan_ms,
            r.scan_ms / r.indexed_ms,
            r.index_hits,
            r.index_builds,
            if i + 1 < join_rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &s) {
        eprintln!("sched: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "sched OK: {} queue rows, {} probe rows, {} join rows -> {out_path}",
        queue_rows.len(),
        probe_rows.len(),
        join_rows.len()
    );
    ExitCode::SUCCESS
}
