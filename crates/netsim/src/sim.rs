//! The discrete-event simulator core.
//!
//! Nodes are instances of an [`App`]; they exchange messages over the
//! unit-disk topology with bounded per-hop delays, Bernoulli losses, and
//! per-node clock skew — exactly the environment Theorems 1–3 assume
//! (bounded message delays, bounded clock difference τc). Deterministic for
//! a fixed seed: event ties break on the origin-keyed key
//! `(origin_node << 32) | per-origin counter`, and every random draw on the
//! message path comes from the *sender's* private [`NodeRng`] stream. The
//! schedule is therefore a pure function of `(seed, program)`, independent
//! of which scheduler backend executes it — including the region-sharded
//! conservative-PDES backend (see [`crate::shard`]), whose workers replay
//! disjoint projections of the same global `(at, tie)` order.

use crate::faults::{FaultEvent, FaultKind, FaultSchedule, LinkState};
use crate::metrics::Metrics;
use crate::shard::ShardQueues;
use crate::topology::{NodeId, Topology};
use crate::trace::{DropReason, TraceEvent, TraceRecord, TraceSink};
use crate::wheel::TimerWheel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sensorlog_telemetry::{Scope, Telemetry, BYTES_BUCKETS, SIM_MS_BUCKETS};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Simulated time in milliseconds.
pub type SimTime = u64;

/// Size/kind introspection for message accounting.
pub trait MsgMeta {
    /// Approximate on-air payload size in bytes.
    fn size_bytes(&self) -> usize;
    /// Coarse message category for the per-kind counters
    /// (e.g. `"storage"`, `"join"`, `"result"`).
    fn kind(&self) -> &'static str {
        "msg"
    }
}

/// A node application.
pub trait App: Sized {
    type Msg: Clone + MsgMeta;

    /// Called once at time 0.
    fn on_start(&mut self, _ctx: &mut Ctx<Self::Msg>) {}

    /// Called on a *fresh* application instance when a crashed node is
    /// restarted by the fault plane. Defaults to [`App::on_start`];
    /// recovery-aware apps override this to replay durable state.
    fn on_restart(&mut self, ctx: &mut Ctx<Self::Msg>) {
        self.on_start(ctx);
    }

    /// A message arrived from a neighbor.
    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: NodeId, msg: Self::Msg);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<Self::Msg>, _tag: u64) {}
}

/// Event-queue backend. Every variant pops in exactly `(at, tie)` order, so
/// for a fixed seed a run is byte-identical under any of them — the choice
/// is purely about throughput (see DESIGN.md "Scheduler" and
/// `tests/trace_stability.rs`, which pins all backends to one golden hash).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sched {
    /// Two-tier calendar queue ([`crate::wheel::TimerWheel`]): O(1)
    /// amortised push/pop keyed on the bounded per-hop delay model.
    Wheel,
    /// The original `BinaryHeap<Reverse<Queued>>`: O(log n) per operation.
    /// Kept as the reference implementation and for A/B benchmarks.
    Heap,
    /// Conservative-PDES region sharding: the node space splits into
    /// `workers` contiguous regions, each with its own wheel, advanced in
    /// lockstep windows bounded by the minimum hop delay (the lookahead).
    /// Cross-region sends ride per-pair mailboxes flushed at window
    /// barriers. Requires `hop_delay.0 ≥ 1`. See [`crate::shard`].
    Shard { workers: usize },
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Per-hop delivery delay sampled uniformly from this range (ms).
    pub hop_delay: (SimTime, SimTime),
    /// Per-transmission loss probability (uniform across links).
    pub loss_prob: f64,
    /// Per-link loss overrides `(from, to) → p` (testbed profile's
    /// asymmetric links).
    pub link_loss: HashMap<(NodeId, NodeId), f64>,
    /// Link-layer retransmissions (ARQ): on loss, up to this many retries
    /// per hop, each counted as a transmission. 0 = no retries.
    pub retries: u32,
    /// Max clock skew: node-local clocks read `now + skew`,
    /// `skew ∈ [0, clock_skew_max]` (so τc = clock_skew_max).
    pub clock_skew_max: SimTime,
    /// RNG seed; fixed seed ⇒ fully deterministic run.
    pub seed: u64,
    /// Event-queue backend; observationally pure, defaults to the wheel.
    pub sched: Sched,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            hop_delay: (5, 30),
            loss_prob: 0.0,
            link_loss: HashMap::new(),
            retries: 0,
            clock_skew_max: 0,
            seed: 0xC0FFEE,
            sched: Sched::Wheel,
        }
    }
}

pub(crate) enum Event<M> {
    Start(NodeId),
    /// One queue operation carrying every message that was sent to `to`
    /// with the same sampled arrival time by *adjacent* sends (see
    /// [`Lane::apply_outputs`] — only adjacency keeps the `(at, tie)`
    /// tie-break order intact). Delivered in push order.
    Deliver {
        to: NodeId,
        from: NodeId,
        msgs: Vec<M>,
    },
    Timer {
        node: NodeId,
        tag: u64,
        /// Boot epoch of the incarnation that armed this timer. A timer
        /// whose epoch is stale (the node crashed and restarted since it
        /// was set) is consumed silently instead of firing on the new
        /// incarnation.
        epoch: u32,
    },
}

impl<M> Event<M> {
    /// The node whose callbacks this event drives (delivery target, timer
    /// owner, starting node) — the shard router's key: an event is always
    /// processed by the region that owns its handler.
    pub(crate) fn handler(&self) -> NodeId {
        match self {
            Event::Start(node) => *node,
            Event::Deliver { to, .. } => *to,
            Event::Timer { node, .. } => *node,
        }
    }
}

pub(crate) struct Queued<M> {
    pub(crate) at: SimTime,
    pub(crate) tie: u64,
    pub(crate) event: Event<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.tie == other.tie
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.tie).cmp(&(other.at, other.tie))
    }
}

/// Per-node deterministic RNG stream: xoroshiro128++ (Blackman & Vigna's
/// public-domain generator), seeded via splitmix64 from `(seed, node)`.
///
/// A node's loss/jitter draws are consumed exclusively while *its* radio
/// transmits, so each stream's consumption order is fixed by that node's
/// local event order alone — the property that lets region workers run
/// concurrently yet byte-match the serial schedule. (The old global
/// `StdRng` made every draw depend on the full interleaving.)
#[derive(Clone, Debug)]
pub(crate) struct NodeRng {
    s0: u64,
    s1: u64,
}

impl NodeRng {
    pub(crate) fn new(seed: u64, node: u32) -> NodeRng {
        // splitmix64 over a (seed, node)-derived state; xoroshiro's authors
        // recommend exactly this for seeding.
        let mut x = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(node as u64 + 1);
        let mut split = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s0 = split();
        let mut s1 = split();
        if s0 == 0 && s1 == 0 {
            s1 = 1; // the all-zero state is the one forbidden seed
        }
        NodeRng { s0, s1 }
    }

    #[inline]
    pub(crate) fn next_u64(&mut self) -> u64 {
        let s0 = self.s0;
        let mut s1 = self.s1;
        let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
        s1 ^= s0;
        self.s0 = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
        self.s1 = s1.rotate_left(28);
        result
    }

    /// Uniform in `[0, 1)`, 53 mantissa bits.
    #[inline]
    pub(crate) fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi]`. Modulo reduction: the bias over a ≤ few-dozen
    /// ms jitter span is ~2⁻⁵⁸ — irrelevant for delay sampling, and cheaper
    /// than rejection on the hottest path in the simulator.
    #[inline]
    pub(crate) fn gen_range(&mut self, lo: SimTime, hi: SimTime) -> SimTime {
        debug_assert!(hi > lo);
        lo + self.next_u64() % (hi - lo + 1)
    }
}

/// Scheduler operation counters, exported as `sched.*` telemetry gauges by
/// the deployment layer. Plain fields on the hot path; zero-cost to skip.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// Queue operations (pushes) actually performed.
    pub pushes: u64,
    /// Messages that rode an existing queue operation (same link, same
    /// arrival tick as the immediately preceding send).
    pub batched_msgs: u64,
    /// Wheel/shard only: events entering the ring / spill tiers.
    pub ring_pushes: u64,
    pub spill_pushes: u64,
    /// Wheel/shard only: spill-bucket migrations and window rebases.
    pub migrations: u64,
    pub window_advances: u64,
    /// Shard only: lockstep windows executed and cross-region messages
    /// carried through window-barrier mailboxes.
    pub shard_windows: u64,
    pub shard_cross_msgs: u64,
    /// Shard only: events handled on the sub-threshold serial path.
    pub shard_serial_events: u64,
    /// Shard only: summed per-region busy time vs. summed per-window
    /// critical path (the max busy region per window), nanoseconds. Their
    /// ratio is the model speedup an ideally parallel host would reach.
    pub shard_work_ns: u64,
    pub shard_crit_ns: u64,
    /// Shard only: number of regions (≤ configured workers).
    pub shard_regions: u64,
}

/// The pluggable event queue. All variants pop strictly in `(at, tie)`
/// order; see [`Sched`].
pub(crate) enum EventQueue<M> {
    Heap(BinaryHeap<Reverse<Queued<M>>>),
    // Boxed: the wheel's inline occupancy bitmap dwarfs the heap variant.
    Wheel(Box<TimerWheel<Event<M>>>),
    Shard(ShardQueues<M>),
}

impl<M> EventQueue<M> {
    fn new(sched: Sched, n_nodes: usize) -> EventQueue<M> {
        match sched {
            Sched::Heap => EventQueue::Heap(BinaryHeap::new()),
            Sched::Wheel => EventQueue::Wheel(Box::default()),
            Sched::Shard { workers } => EventQueue::Shard(ShardQueues::new(n_nodes, workers)),
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, tie: u64, event: Event<M>) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse(Queued { at, tie, event })),
            EventQueue::Wheel(w) => w.push(at, tie, event),
            EventQueue::Shard(s) => s.push(at, tie, event),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, u64, Event<M>)> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(q)| (q.at, q.tie, q.event)),
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Shard(s) => s.pop(),
        }
    }

    /// Timestamp of the next event. `&mut` because the wheel may raise its
    /// scan hint while locating it (a pure-lookahead operation: nothing is
    /// removed or reordered).
    pub(crate) fn next_at(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|Reverse(q)| q.at),
            EventQueue::Wheel(w) => w.next_at(),
            EventQueue::Shard(s) => s.next_at(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Wheel(w) => w.len(),
            EventQueue::Shard(s) => s.len(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Node-side API handle passed to [`App`] callbacks. Sends and timers are
/// buffered and applied by the simulator when the callback returns.
pub struct Ctx<'a, M> {
    /// This node's id.
    pub node: NodeId,
    /// Global simulation time (apps should normally use [`Ctx::local_time`]).
    pub now: SimTime,
    /// Node-local clock (global time + this node's skew).
    pub local_time: SimTime,
    topo: &'a Topology,
    sends: Vec<(NodeId, M)>,
    timers: Vec<(SimTime, u64)>,
}

impl<'a, M> Ctx<'a, M> {
    /// Unicast to a direct neighbor. Panics on non-neighbors: multi-hop
    /// routing is the network stack's job, not the radio's.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.topo.are_neighbors(self.node, to),
            "{} attempted radio send to non-neighbor {}",
            self.node,
            to
        );
        self.sends.push((to, msg));
    }

    /// Broadcast to every neighbor (counted as one transmission per
    /// neighbor delivery attempt, one tx record per neighbor — conservative
    /// for load accounting).
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        let neighbors: Vec<NodeId> = self.topo.neighbors(self.node).to_vec();
        for n in neighbors {
            self.sends.push((n, msg.clone()));
        }
    }

    /// Fire `on_timer(tag)` after `delay` ms of global time.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        self.timers.push((delay, tag));
    }

    pub fn neighbors(&self) -> &[NodeId] {
        self.topo.neighbors(self.node)
    }

    pub fn position(&self) -> (f64, f64) {
        self.topo.position(self.node)
    }

    pub fn topology(&self) -> &Topology {
        self.topo
    }
}

/// Where a [`Lane`]'s outputs land: the serial main loop ([`MainSink`]) or
/// a region worker's scratch (`shard::RegionSink`). Statically dispatched;
/// both paths execute the *identical* `Lane` code, so serial/sharded
/// behavioral divergence is impossible by construction.
pub(crate) trait LaneSink<M> {
    /// Enqueue `event` keyed `(at, tie)`.
    fn push(&mut self, at: SimTime, tie: u64, event: Event<M>);
    /// Journal a record at time `now` (construction deferred; a sink with
    /// no journal attached pays one branch).
    fn emit(&mut self, now: SimTime, event: impl FnOnce() -> TraceEvent)
    where
        Self: Sized;
    fn record_tx(&mut self, node: NodeId, bytes: usize, kind: &'static str);
    fn record_rx(&mut self, node: NodeId, bytes: usize, kind: &'static str);
    fn record_loss(&mut self, kind: &'static str, reason: DropReason);
}

/// The event-processing core shared by the serial loop and region workers:
/// a window onto the per-node state (`apps`/`rngs`/`counters` slices cover
/// nodes `base..base + len`), plus the shared read-only environment.
/// Everything an event does — callbacks, RNG draws, tie assignment, ARQ,
/// batching — happens here, parameterized only by where outputs go.
pub(crate) struct Lane<'a, A: App> {
    pub(crate) topo: &'a Topology,
    pub(crate) config: &'a SimConfig,
    pub(crate) telemetry: &'a Telemetry,
    pub(crate) skew: &'a [SimTime],
    pub(crate) failed: &'a [bool],
    /// Per-node boot epochs (bumped on restart); stamps timers.
    pub(crate) epochs: &'a [u32],
    /// Link-level fault condition (partitions, loss overrides, dup /
    /// reorder windows). Mutated only at drain / window boundaries.
    pub(crate) links: &'a LinkState,
    pub(crate) apps: &'a mut [A],
    pub(crate) rngs: &'a mut [NodeRng],
    pub(crate) counters: &'a mut [u32],
    /// First node id covered by the mutable slices above.
    pub(crate) base: u32,
    pub(crate) events_processed: &'a mut u64,
    pub(crate) batched_msgs: &'a mut u64,
}

impl<'a, A: App> Lane<'a, A> {
    #[inline]
    fn idx(&self, node: NodeId) -> usize {
        debug_assert!(node.0 >= self.base, "node outside this lane's region");
        (node.0 - self.base) as usize
    }

    /// Mint the next `(origin << 32) | counter` tie for a push by `origin`.
    #[inline]
    fn next_tie(&mut self, origin: NodeId) -> u64 {
        let i = self.idx(origin);
        let c = self.counters[i];
        self.counters[i] = c.checked_add(1).expect("per-origin tie counter overflow");
        ((origin.0 as u64) << 32) | c as u64
    }

    /// Run `f` on `node` at time `now`, then apply the sends/timers it
    /// buffered. No-op on failed nodes.
    pub(crate) fn invoke<S: LaneSink<A::Msg>>(
        &mut self,
        sink: &mut S,
        now: SimTime,
        node: NodeId,
        f: impl FnOnce(&mut A, &mut Ctx<A::Msg>),
    ) {
        if self.failed[node.index()] {
            return; // dead nodes do nothing
        }
        let mut ctx = Ctx {
            node,
            now,
            local_time: now + self.skew[node.index()],
            topo: self.topo,
            sends: Vec::new(),
            timers: Vec::new(),
        };
        let i = self.idx(node);
        f(&mut self.apps[i], &mut ctx);
        let (sends, timers) = (ctx.sends, ctx.timers);
        self.apply_outputs(sink, now, node, sends, timers);
    }

    fn apply_outputs<S: LaneSink<A::Msg>>(
        &mut self,
        sink: &mut S,
        now: SimTime,
        from: NodeId,
        sends: Vec<(NodeId, A::Msg)>,
        timers: Vec<(SimTime, u64)>,
    ) {
        let _route_span = self.telemetry.span("sim.route");
        // Adjacent sends to the same neighbor that sample the same arrival
        // tick ride one queue operation. Only *adjacent* merging is sound:
        // the batch takes the tie of its first message, so merging across an
        // intervening push would move a message ahead of an event it is
        // supposed to tie-break behind. (Dropped sends never push, so a loss
        // between two mergeable sends does not break adjacency — exactly as
        // in the unbatched baseline.)
        let mut pending: Option<(NodeId, SimTime, u64, Vec<A::Msg>)> = None;
        let mut dups: Vec<(NodeId, SimTime, A::Msg)> = Vec::new();
        for (to, msg) in sends {
            let bytes = msg.size_bytes();
            let kind = msg.kind();
            self.telemetry
                .observe(Scope::Node(from.0), "tx_bytes", BYTES_BUCKETS, bytes as u64);
            // A downed link is a loss probability of 1 — same RNG draw
            // pattern as lossy air, so healing a link never shifts the
            // sender's stream relative to a run where it stayed up.
            let down = self.links.is_down(from, to);
            let p = if down {
                1.0
            } else {
                self.links.loss_override(from, to).unwrap_or_else(|| {
                    self.config
                        .link_loss
                        .get(&(from, to))
                        .copied()
                        .unwrap_or(self.config.loss_prob)
                })
            };
            let attempt_reason = if down {
                DropReason::Partition
            } else {
                DropReason::Loss
            };
            // Link-layer ARQ: attempt until delivered or retries exhausted;
            // every attempt is a transmission, failed attempts are losses.
            // Retransmission backoff is exponential: 5, 10, 20, … ms.
            let mut delivered = false;
            let mut extra_delay: SimTime = 0;
            let rng_i = self.idx(from);
            for attempt in 0..=self.config.retries {
                sink.record_tx(from, bytes, kind);
                sink.emit(now, || TraceEvent::Send {
                    from,
                    to,
                    kind,
                    bytes,
                    attempt,
                });
                if p > 0.0 && self.rngs[rng_i].gen_f64() < p {
                    sink.record_loss(kind, attempt_reason);
                    extra_delay += 5u64 << attempt.min(5);
                    continue;
                }
                delivered = true;
                break;
            }
            if !delivered {
                let reason = if down {
                    DropReason::Partition
                } else if self.config.retries > 0 {
                    DropReason::Retries
                } else {
                    DropReason::Loss
                };
                sink.emit(now, || TraceEvent::Drop {
                    from,
                    to,
                    kind,
                    reason,
                });
                continue;
            }
            let (lo, hi) = self.config.hop_delay;
            let mut delay = if hi > lo {
                self.rngs[rng_i].gen_range(lo, hi)
            } else {
                lo
            };
            // Open reordering window: extra uniform jitter on top of the
            // hop delay lets later sends overtake this one. The draw only
            // happens while a window is open, so the fault-free stream is
            // untouched.
            if let Some(jitter) = self.links.reorder_jitter(now) {
                delay += self.rngs[rng_i].gen_range(0, jitter);
            }
            self.telemetry.observe(
                Scope::Global,
                "hop_delay_ms",
                SIM_MS_BUCKETS,
                delay + extra_delay,
            );
            let at = now + delay + extra_delay;
            // Open duplication window: the radio transmits a copy with its
            // own delay draw. The copy is a full transmission (tx recorded,
            // journaled) so message-conservation accounting still balances.
            if let Some(pdup) = self.links.dup_prob(now) {
                if self.rngs[rng_i].gen_f64() < pdup {
                    let ddelay = if hi > lo {
                        self.rngs[rng_i].gen_range(lo, hi)
                    } else {
                        lo
                    };
                    sink.record_tx(from, bytes, kind);
                    sink.emit(now, || TraceEvent::Send {
                        from,
                        to,
                        kind,
                        bytes,
                        attempt: 0,
                    });
                    dups.push((to, now + ddelay + extra_delay, msg.clone()));
                }
            }
            match &mut pending {
                Some((pto, pat, _ptie, msgs)) if *pto == to && *pat == at => {
                    msgs.push(msg);
                    *self.batched_msgs += 1;
                }
                _ => {
                    if let Some((pto, pat, ptie, msgs)) = pending.take() {
                        sink.push(
                            pat,
                            ptie,
                            Event::Deliver {
                                to: pto,
                                from,
                                msgs,
                            },
                        );
                    }
                    // The tie is minted when the batch opens; later messages
                    // ride it. Creation order == flush order (timers only
                    // push after the last flush), so per-origin ties stay
                    // monotone in push order.
                    let tie = self.next_tie(from);
                    pending = Some((to, at, tie, vec![msg]));
                }
            }
        }
        if let Some((pto, pat, ptie, msgs)) = pending.take() {
            sink.push(
                pat,
                ptie,
                Event::Deliver {
                    to: pto,
                    from,
                    msgs,
                },
            );
        }
        for (to, at, msg) in dups {
            let tie = self.next_tie(from);
            sink.push(
                at,
                tie,
                Event::Deliver {
                    to,
                    from,
                    msgs: vec![msg],
                },
            );
        }
        let epoch = self.epochs[from.index()];
        for (delay, tag) in timers {
            let tie = self.next_tie(from);
            sink.push(
                now + delay,
                tie,
                Event::Timer {
                    node: from,
                    tag,
                    epoch,
                },
            );
        }
    }

    /// Process one popped event at time `now` — the dispatch shared
    /// verbatim by [`Simulator::step`] and the shard workers. A batched
    /// delivery counts one logical event per message it carries, so
    /// `events_processed` is identical to the unbatched baseline.
    pub(crate) fn dispatch<S: LaneSink<A::Msg>>(
        &mut self,
        sink: &mut S,
        now: SimTime,
        event: Event<A::Msg>,
    ) {
        match event {
            Event::Start(node) => {
                *self.events_processed += 1;
                if !self.failed[node.index()] {
                    sink.emit(now, || TraceEvent::Start { node });
                }
                self.invoke(sink, now, node, |app, ctx| app.on_start(ctx));
            }
            Event::Deliver { to, from, msgs } => {
                // Messages in a batch are delivered in push order; each gets
                // its own journal record, metrics, and app callback, exactly
                // as if it had been queued alone.
                for msg in msgs {
                    *self.events_processed += 1;
                    if self.failed[to.index()] {
                        sink.record_loss(msg.kind(), DropReason::DeadNode);
                        sink.emit(now, || TraceEvent::Drop {
                            from,
                            to,
                            kind: msg.kind(),
                            reason: DropReason::DeadNode,
                        });
                    } else {
                        let _span = self.telemetry.span("sim.deliver");
                        sink.record_rx(to, msg.size_bytes(), msg.kind());
                        sink.emit(now, || TraceEvent::Deliver {
                            from,
                            to,
                            kind: msg.kind(),
                            bytes: msg.size_bytes(),
                        });
                        self.invoke(sink, now, to, |app, ctx| app.on_message(ctx, from, msg));
                    }
                }
            }
            Event::Timer { node, tag, epoch } => {
                *self.events_processed += 1;
                if self.epochs[node.index()] != epoch {
                    return; // armed by a previous incarnation: swallow
                }
                let _span = self.telemetry.span("sim.timer");
                if !self.failed[node.index()] {
                    sink.emit(now, || TraceEvent::Timer { node, tag });
                }
                self.invoke(sink, now, node, |app, ctx| app.on_timer(ctx, tag));
            }
        }
    }
}

/// The serial sink: outputs go straight to the global queue, journal, and
/// metrics registry.
pub(crate) struct MainSink<'a, M> {
    queue: &'a mut EventQueue<M>,
    trace: &'a mut Option<Box<dyn TraceSink>>,
    trace_seq: &'a mut u64,
    metrics: &'a mut Metrics,
    max_queue_depth: &'a mut usize,
    pushes: &'a mut u64,
}

impl<M> LaneSink<M> for MainSink<'_, M> {
    fn push(&mut self, at: SimTime, tie: u64, event: Event<M>) {
        self.queue.push(at, tie, event);
        *self.pushes += 1;
        *self.max_queue_depth = (*self.max_queue_depth).max(self.queue.len());
    }

    fn emit(&mut self, now: SimTime, event: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(TraceRecord {
                seq: *self.trace_seq,
                at: now,
                event: event(),
            });
            *self.trace_seq += 1;
        }
    }

    fn record_tx(&mut self, node: NodeId, bytes: usize, kind: &'static str) {
        self.metrics.record_tx(node, bytes, kind);
    }

    fn record_rx(&mut self, node: NodeId, bytes: usize, kind: &'static str) {
        self.metrics.record_rx(node, bytes, kind);
    }

    fn record_loss(&mut self, kind: &'static str, reason: DropReason) {
        self.metrics.record_loss(kind, reason);
    }
}

/// Node-application factory: builds an app at boot and on restart.
type MakeApp<A> = Box<dyn FnMut(NodeId, &Topology) -> A + Send>;

/// The simulator: topology + per-node apps + event queue + metrics.
pub struct Simulator<A: App> {
    pub(crate) topo: Topology,
    pub(crate) apps: Vec<A>,
    pub(crate) queue: EventQueue<A::Msg>,
    pub(crate) now: SimTime,
    /// Per-origin tie counters (`tie = origin << 32 | counter`).
    pub(crate) counters: Vec<u32>,
    pub(crate) pushes: u64,
    pub(crate) batched_msgs: u64,
    pub(crate) skew: Vec<SimTime>,
    /// Crashed nodes: deliver nothing, fire no timers, send nothing.
    pub(crate) failed: Vec<bool>,
    /// Per-node boot epoch: bumped on restart so stale timers from a
    /// previous incarnation are swallowed instead of firing.
    pub(crate) epochs: Vec<u32>,
    /// Link-level fault condition driven by the fault schedule.
    pub(crate) links: LinkState,
    /// Pending fault schedule (sorted) and application cursor.
    pub(crate) faults: Vec<FaultEvent>,
    pub(crate) fault_cursor: usize,
    /// Rebuilds a node's application on restart (full volatile state
    /// loss); also used during construction.
    make_app: MakeApp<A>,
    /// Per-node RNG streams for the message path (loss + jitter draws).
    pub(crate) rngs: Vec<NodeRng>,
    pub config: SimConfig,
    pub metrics: Metrics,
    pub(crate) events_processed: u64,
    /// Optional event journal (see [`crate::trace`]). `None` costs one
    /// branch per event and never constructs a record.
    pub(crate) trace: Option<Box<dyn TraceSink>>,
    pub(crate) trace_seq: u64,
    pub(crate) max_queue_depth: usize,
    /// Optional telemetry handle (spans + histograms). Disabled costs one
    /// branch per use, same contract as `trace`. Telemetry is an observer:
    /// it never touches the RNGs or the event queue, so enabling it cannot
    /// change a run's journal.
    pub(crate) telemetry: Telemetry,
    /// Shard backend: use worker threads for lockstep windows (default).
    /// Off = the same windows run inline on the calling thread.
    pub(crate) shard_threads: bool,
    /// Shard backend: below this many pending events, fall back to serial
    /// single-event stepping (identical global order, no barrier costs).
    pub(crate) shard_threshold: usize,
}

impl<A: App> Simulator<A> {
    /// Build a simulator; `make_app` constructs each node's application.
    /// Start events for every node are queued at t = 0.
    pub fn new(
        topo: Topology,
        config: SimConfig,
        make_app: impl FnMut(NodeId, &Topology) -> A + Send + 'static,
    ) -> Simulator<A> {
        let mut make_app: MakeApp<A> = Box::new(make_app);
        if let Sched::Shard { workers } = config.sched {
            assert!(workers >= 1, "Sched::Shard requires at least one worker");
            assert!(
                config.hop_delay.0 >= 1,
                "Sched::Shard requires hop_delay.0 ≥ 1: the minimum hop \
                 delay is the conservative-PDES lookahead bound"
            );
        }
        // Setup-only RNG: clock skew is sampled once, serially, before any
        // event runs — the per-node streams never see these draws.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let skew: Vec<SimTime> = (0..topo.len())
            .map(|_| {
                if config.clock_skew_max == 0 {
                    0
                } else {
                    rng.gen_range(0..=config.clock_skew_max)
                }
            })
            .collect();
        let apps: Vec<A> = topo.nodes().map(|id| make_app(id, &topo)).collect();
        let rngs: Vec<NodeRng> = (0..topo.len() as u32)
            .map(|i| NodeRng::new(config.seed, i))
            .collect();
        let metrics = Metrics::new(topo.len());
        let failed = vec![false; apps.len()];
        let epochs = vec![0u32; apps.len()];
        let counters = vec![0u32; apps.len()];
        let queue = EventQueue::new(config.sched, topo.len());
        let mut sim = Simulator {
            topo,
            apps,
            queue,
            now: 0,
            counters,
            pushes: 0,
            batched_msgs: 0,
            skew,
            failed,
            epochs,
            links: LinkState::default(),
            faults: Vec::new(),
            fault_cursor: 0,
            make_app,
            rngs,
            config,
            metrics,
            events_processed: 0,
            trace: None,
            trace_seq: 0,
            max_queue_depth: 0,
            telemetry: Telemetry::disabled(),
            shard_threads: true,
            shard_threshold: crate::shard::PAR_THRESHOLD,
        };
        for id in sim.topo.nodes() {
            sim.push_from(id, 0, Event::Start(id));
        }
        sim
    }

    /// Direct push used during construction; all event-path pushes go
    /// through a [`LaneSink`].
    fn push_from(&mut self, origin: NodeId, at: SimTime, event: Event<A::Msg>) {
        let c = self.counters[origin.index()];
        self.counters[origin.index()] = c + 1;
        let tie = ((origin.0 as u64) << 32) | c as u64;
        self.queue.push(at, tie, event);
        self.pushes += 1;
        self.max_queue_depth = self.max_queue_depth.max(self.queue.len());
    }

    /// Split borrow: the shared processing core plus the serial sink. Both
    /// views borrow disjoint fields, so they coexist for one dispatch.
    pub(crate) fn lane_parts(&mut self) -> (Lane<'_, A>, MainSink<'_, A::Msg>) {
        (
            Lane {
                topo: &self.topo,
                config: &self.config,
                telemetry: &self.telemetry,
                skew: &self.skew,
                failed: &self.failed,
                epochs: &self.epochs,
                links: &self.links,
                apps: &mut self.apps,
                rngs: &mut self.rngs,
                counters: &mut self.counters,
                base: 0,
                events_processed: &mut self.events_processed,
                batched_msgs: &mut self.batched_msgs,
            },
            MainSink {
                queue: &mut self.queue,
                trace: &mut self.trace,
                trace_seq: &mut self.trace_seq,
                metrics: &mut self.metrics,
                max_queue_depth: &mut self.max_queue_depth,
                pushes: &mut self.pushes,
            },
        )
    }

    /// Attach a trace sink (e.g. [`crate::trace::SharedJournal`]); every
    /// subsequent event is journaled. Pass-by-`Box` so callers keep a
    /// shared handle if they need the data back afterwards.
    pub fn set_trace(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Detach the current trace sink, if any.
    pub fn clear_trace(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Attach a telemetry handle; the caller keeps a clone to read results
    /// back. Spans cover routing, delivery, and timer dispatch; histograms
    /// cover per-node message sizes and hop delays.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.telemetry = tele;
    }

    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Shard backend: toggle worker threads for lockstep windows (default
    /// on). Off runs the identical windows inline on the calling thread —
    /// the scaling bench uses this to measure the window critical path
    /// without host-core noise. No effect on results or on other backends:
    /// the schedule is byte-identical either way.
    pub fn set_shard_threading(&mut self, on: bool) {
        self.shard_threads = on;
    }

    /// Shard backend: set the pending-event count below which the scheduler
    /// steps serially instead of opening a window (test/bench knob).
    pub fn set_shard_threshold(&mut self, min_pending: usize) {
        self.shard_threshold = min_pending;
    }

    /// Journal an event outside the lane path (failure injection).
    #[inline]
    fn emit(&mut self, event: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(TraceRecord {
                seq: self.trace_seq,
                at: self.now,
                event: event(),
            });
            self.trace_seq += 1;
        }
    }

    /// High-water mark of the pending event queue over the whole run.
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }

    /// Scheduler operation counters for this run (`sched.*` telemetry).
    pub fn sched_stats(&self) -> SchedStats {
        let mut s = SchedStats {
            pushes: self.pushes,
            batched_msgs: self.batched_msgs,
            ..SchedStats::default()
        };
        match &self.queue {
            EventQueue::Wheel(w) => {
                s.ring_pushes = w.stats.ring_pushes;
                s.spill_pushes = w.stats.spill_pushes;
                s.migrations = w.stats.migrations;
                s.window_advances = w.stats.window_advances;
            }
            EventQueue::Shard(sq) => sq.fill_stats(&mut s),
            EventQueue::Heap(_) => {}
        }
        s
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn local_time(&self, node: NodeId) -> SimTime {
        self.now + self.skew[node.index()]
    }

    pub fn node(&self, id: NodeId) -> &A {
        &self.apps[id.index()]
    }

    pub fn node_mut(&mut self, id: NodeId) -> &mut A {
        &mut self.apps[id.index()]
    }

    pub fn nodes(&self) -> impl Iterator<Item = &A> {
        self.apps.iter()
    }

    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Crash a node: it stops receiving, sending, and firing timers
    /// ("fault-tolerant … immune to certain topology changes", Sec. III-A:
    /// the replication of PA is exactly what failures test).
    pub fn fail_node(&mut self, id: NodeId) {
        if self.failed[id.index()] {
            return; // idempotent: a dead node stays dead
        }
        self.failed[id.index()] = true;
        self.emit(|| TraceEvent::NodeFail { node: id });
    }

    /// Restart a crashed node: a fresh application instance (volatile
    /// state lost), a bumped boot epoch (stale timers swallowed), and an
    /// immediate [`App::on_restart`] callback. RNG streams, tie counters,
    /// and clock skew persist across incarnations — determinism depends
    /// on it. No-op on live nodes.
    pub fn restart_node(&mut self, id: NodeId) {
        if !self.failed[id.index()] {
            return;
        }
        self.failed[id.index()] = false;
        self.epochs[id.index()] += 1;
        self.apps[id.index()] = (self.make_app)(id, &self.topo);
        self.emit(|| TraceEvent::NodeRestart { node: id });
        let now = self.now;
        let (mut lane, mut sink) = self.lane_parts();
        lane.invoke(&mut sink, now, id, |app, ctx| app.on_restart(ctx));
    }

    pub fn is_failed(&self, id: NodeId) -> bool {
        self.failed[id.index()]
    }

    /// Attach a fault schedule. Faults are applied at their exact tick,
    /// interleaved with event processing under every backend: a fault at
    /// time `t` strikes before any event scheduled at `t` runs.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.faults = schedule.sorted().events().to_vec();
        self.fault_cursor = 0;
    }

    /// True when a fault schedule was attached or a node was ever failed
    /// manually — the "fault plane active" flag checks key off.
    pub fn faults_injected(&self) -> bool {
        !self.faults.is_empty() || self.failed.iter().any(|&f| f)
    }

    /// Faults not yet applied (scheduled beyond the time drained so far).
    pub fn pending_faults(&self) -> usize {
        self.faults.len() - self.fault_cursor
    }

    /// Current link-level fault condition (read-only).
    pub fn link_state(&self) -> &LinkState {
        &self.links
    }

    /// Time of the next unapplied fault at or before `limit`.
    pub(crate) fn next_fault_at(&self, limit: SimTime) -> Option<SimTime> {
        self.faults
            .get(self.fault_cursor)
            .map(|f| f.at)
            .filter(|&t| t <= limit)
    }

    /// Apply every fault scheduled at exactly `t`, advancing `now` to `t`.
    pub(crate) fn apply_faults_at(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "fault time went backwards");
        self.now = self.now.max(t);
        while let Some(f) = self.faults.get(self.fault_cursor) {
            if f.at != t {
                break;
            }
            let kind = f.kind.clone();
            self.fault_cursor += 1;
            self.apply_fault(kind);
        }
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Crash(n) => self.fail_node(n),
            FaultKind::Restart(n) => self.restart_node(n),
            FaultKind::LinkDown(a, b) => {
                self.links.set_down(a, b, true);
                self.emit(|| TraceEvent::LinkDown { a, b });
            }
            FaultKind::LinkUp(a, b) => {
                self.links.set_down(a, b, false);
                self.emit(|| TraceEvent::LinkUp { a, b });
            }
            FaultKind::SetLinkLoss(a, b, ppm) => {
                self.links.set_loss(a, b, ppm);
                self.emit(|| TraceEvent::LinkLoss { a, b, ppm });
            }
            FaultKind::DupWindow { until, ppm } => {
                self.links.open_dup_window(until, ppm);
                self.emit(|| TraceEvent::DupWindow { until, ppm });
            }
            FaultKind::ReorderWindow { until, jitter } => {
                self.links.open_reorder_window(until, jitter);
                self.emit(|| TraceEvent::ReorderWindow { until, jitter });
            }
        }
    }

    /// Run `f` on a node *now* (workload injection: "a sensor reading was
    /// generated at this node"), processing any sends/timers it produces.
    pub fn invoke(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<A::Msg>)) {
        let now = self.now;
        let (mut lane, mut sink) = self.lane_parts();
        lane.invoke(&mut sink, now, node, f);
    }

    /// Process one queue event; false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let (at, _tie, event) = match self.queue.pop() {
            Some(e) => e,
            None => return false,
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        let now = self.now;
        let (mut lane, mut sink) = self.lane_parts();
        lane.dispatch(&mut sink, now, event);
        true
    }

    /// True when no events remain.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }
}

/// The run loop. `Send` bounds let the sharded backend fan windows out to
/// scoped worker threads; the serial backends ignore them. (Apps are plain
/// state machines — all workspace apps are `Send`.)
impl<A: App + Send> Simulator<A>
where
    A::Msg: Send,
{
    /// Step through every event scheduled at or before `limit`. The single
    /// head-draining loop shared by [`Self::run_to_quiescence`] and
    /// [`Self::run_until`]; a no-op on an empty queue.
    fn drain_ready(&mut self, limit: SimTime) {
        if matches!(self.queue, EventQueue::Shard(_)) {
            self.drain_sharded(limit);
            return;
        }
        // Interleave scheduled faults with event processing: a fault at
        // time t strikes before any event at t (so a crash at an event's
        // exact tick kills that event's handler), and pending faults are
        // applied even when the queue is empty (a restart can revive a
        // quiesced network).
        loop {
            let next_fault = self.next_fault_at(limit);
            let next_event = self.queue.next_at().filter(|&at| at <= limit);
            match (next_fault, next_event) {
                (Some(f), Some(at)) if f <= at => self.apply_faults_at(f),
                (_, Some(_)) => {
                    self.step();
                }
                (Some(f), None) => self.apply_faults_at(f),
                (None, None) => break,
            }
        }
    }

    /// Run until the queue drains or simulated time exceeds `limit`.
    /// Returns the final simulated time.
    pub fn run_to_quiescence(&mut self, limit: SimTime) -> SimTime {
        self.drain_ready(limit);
        self.now
    }

    /// Run while events are scheduled at or before `t`.
    pub fn run_until(&mut self, t: SimTime) {
        self.drain_ready(t);
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flood app: node 0 starts a flood; everyone re-broadcasts once.
    struct Flood {
        id: NodeId,
        seen: bool,
        received_at: Option<SimTime>,
    }

    #[derive(Clone)]
    struct Ping;

    impl MsgMeta for Ping {
        fn size_bytes(&self) -> usize {
            8
        }
        fn kind(&self) -> &'static str {
            "ping"
        }
    }

    impl App for Flood {
        type Msg = Ping;

        fn on_start(&mut self, ctx: &mut Ctx<Ping>) {
            if self.id == NodeId(0) {
                self.seen = true;
                self.received_at = Some(ctx.now);
                ctx.broadcast(Ping);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<Ping>, _from: NodeId, msg: Ping) {
            if !self.seen {
                self.seen = true;
                self.received_at = Some(ctx.now);
                ctx.broadcast(msg);
            }
        }
    }

    fn flood_sim(cfg: SimConfig) -> Simulator<Flood> {
        Simulator::new(Topology::square_grid(4), cfg, |id, _| Flood {
            id,
            seen: false,
            received_at: None,
        })
    }

    #[test]
    fn flood_reaches_everyone() {
        let mut sim = flood_sim(SimConfig::default());
        sim.run_to_quiescence(100_000);
        assert!(sim.nodes().all(|n| n.seen));
        // Messages were counted: every node broadcast once to each neighbor.
        assert!(sim.metrics.total_tx() > 0);
        assert_eq!(sim.metrics.tx_by_kind()["ping"], sim.metrics.total_tx());
    }

    #[test]
    fn determinism_same_seed() {
        let mut a = flood_sim(SimConfig::default());
        let mut b = flood_sim(SimConfig::default());
        a.run_to_quiescence(100_000);
        b.run_to_quiescence(100_000);
        assert_eq!(a.metrics.total_tx(), b.metrics.total_tx());
        let ta: Vec<_> = a.nodes().map(|n| n.received_at).collect();
        let tb: Vec<_> = b.nodes().map(|n| n.received_at).collect();
        assert_eq!(ta, tb);
        assert_eq!(a.events_processed(), b.events_processed());
    }

    #[test]
    fn different_seed_differs() {
        let mut a = flood_sim(SimConfig::default());
        let mut b = flood_sim(SimConfig {
            seed: 99,
            ..SimConfig::default()
        });
        a.run_to_quiescence(100_000);
        b.run_to_quiescence(100_000);
        let ta: Vec<_> = a.nodes().map(|n| n.received_at).collect();
        let tb: Vec<_> = b.nodes().map(|n| n.received_at).collect();
        assert_ne!(ta, tb, "delay jitter should differ across seeds");
    }

    #[test]
    fn total_loss_blocks_flood() {
        let mut sim = flood_sim(SimConfig {
            loss_prob: 1.0,
            ..SimConfig::default()
        });
        sim.run_to_quiescence(100_000);
        let reached = sim.nodes().filter(|n| n.seen).count();
        assert_eq!(reached, 1); // only the origin
        assert!(sim.metrics.lost() > 0);
        assert_eq!(sim.metrics.delivered(), 0);
    }

    #[test]
    fn partial_loss_partial_delivery() {
        let mut sim = flood_sim(SimConfig {
            loss_prob: 0.3,
            seed: 7,
            ..SimConfig::default()
        });
        sim.run_to_quiescence(100_000);
        assert!(sim.metrics.lost() > 0);
        assert!(sim.metrics.delivered() > 0);
        let r = sim.metrics.delivery_ratio();
        assert!(r > 0.4 && r < 0.95, "ratio {r} should reflect ~30% loss");
    }

    #[test]
    fn per_link_loss_override() {
        let mut cfg = SimConfig::default();
        // Kill both directions of the 0-1 link on a 1x2 grid.
        cfg.link_loss.insert((NodeId(0), NodeId(1)), 1.0);
        let topo = Topology::grid(2, 1);
        let mut sim = Simulator::new(topo, cfg, |id, _| Flood {
            id,
            seen: false,
            received_at: None,
        });
        sim.run_to_quiescence(10_000);
        assert!(!sim.node(NodeId(1)).seen);
    }

    #[test]
    fn clock_skew_bounded() {
        let sim = flood_sim(SimConfig {
            clock_skew_max: 50,
            ..SimConfig::default()
        });
        for id in sim.topology().nodes() {
            let lt = sim.local_time(id);
            assert!(lt >= sim.now() && lt <= sim.now() + 50);
        }
    }

    #[test]
    fn timers_fire() {
        struct TimerApp {
            fired: Vec<(SimTime, u64)>,
        }
        #[derive(Clone)]
        struct Nothing;
        impl MsgMeta for Nothing {
            fn size_bytes(&self) -> usize {
                0
            }
        }
        impl App for TimerApp {
            type Msg = Nothing;
            fn on_start(&mut self, ctx: &mut Ctx<Nothing>) {
                ctx.set_timer(100, 1);
                ctx.set_timer(50, 2);
            }
            fn on_message(&mut self, _: &mut Ctx<Nothing>, _: NodeId, _: Nothing) {}
            fn on_timer(&mut self, ctx: &mut Ctx<Nothing>, tag: u64) {
                self.fired.push((ctx.now, tag));
            }
        }
        let mut sim = Simulator::new(Topology::grid(1, 1), SimConfig::default(), |_, _| {
            TimerApp { fired: Vec::new() }
        });
        sim.run_to_quiescence(1_000);
        assert_eq!(sim.node(NodeId(0)).fired, vec![(50, 2), (100, 1)]);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn send_to_non_neighbor_panics() {
        struct Bad;
        #[derive(Clone)]
        struct Nothing;
        impl MsgMeta for Nothing {
            fn size_bytes(&self) -> usize {
                0
            }
        }
        impl App for Bad {
            type Msg = Nothing;
            fn on_start(&mut self, ctx: &mut Ctx<Nothing>) {
                ctx.send(NodeId(8), Nothing); // diagonal/non-adjacent
            }
            fn on_message(&mut self, _: &mut Ctx<Nothing>, _: NodeId, _: Nothing) {}
        }
        let mut sim = Simulator::new(Topology::square_grid(3), SimConfig::default(), |_, _| Bad);
        sim.run_to_quiescence(100);
    }

    #[test]
    fn run_until_advances_clock() {
        let mut sim = flood_sim(SimConfig::default());
        sim.run_until(10);
        assert!(sim.now() >= 10 || sim.is_quiescent());
    }

    fn lossy_cfg() -> SimConfig {
        SimConfig {
            loss_prob: 0.25,
            retries: 1,
            seed: 11,
            ..SimConfig::default()
        }
    }

    fn journaled_flood(cfg: SimConfig) -> crate::trace::Journal {
        let shared = crate::trace::SharedJournal::new(cfg.seed);
        let mut sim = flood_sim(cfg);
        sim.set_trace(Box::new(shared.clone()));
        sim.run_to_quiescence(100_000);
        shared.take()
    }

    #[test]
    fn record_replay_byte_identical() {
        // A journal recorded from a seeded run, re-run under the same
        // configuration, must reproduce byte-for-byte.
        let a = journaled_flood(lossy_cfg());
        let b = journaled_flood(lossy_cfg());
        assert_eq!(
            a.first_divergence(&b),
            None,
            "first divergence: {:?} vs {:?}",
            a.first_divergence(&b).map(|i| &a.records[i]),
            a.first_divergence(&b).and_then(|i| b.records.get(i)),
        );
        assert_eq!(a.to_text(), b.to_text(), "journals must be byte-identical");
        assert_eq!(a.content_hash(), b.content_hash());
        assert!(!a.records.is_empty());
        // Trace seq numbers are monotonic from 0.
        for (i, r) in a.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn replay_checker_verifies_live_rerun() {
        let recorded = journaled_flood(lossy_cfg());
        let mut sim = flood_sim(lossy_cfg());
        let checker = crate::trace::ReplayChecker::new(recorded);
        let shared = std::rc::Rc::new(std::cell::RefCell::new(checker));
        struct SharedChecker(std::rc::Rc<std::cell::RefCell<crate::trace::ReplayChecker>>);
        impl crate::trace::TraceSink for SharedChecker {
            fn record(&mut self, rec: crate::trace::TraceRecord) {
                self.0.borrow_mut().record(rec);
            }
        }
        sim.set_trace(Box::new(SharedChecker(shared.clone())));
        sim.run_to_quiescence(100_000);
        let result = shared.borrow().result();
        if let Err(d) = result {
            panic!("{d}");
        }
    }

    #[test]
    fn different_seed_diverges_in_journal() {
        let a = journaled_flood(lossy_cfg());
        let b = journaled_flood(SimConfig {
            seed: 12,
            ..lossy_cfg()
        });
        assert!(a.first_divergence(&b).is_some());
    }

    #[test]
    fn trace_covers_loss_and_failure_events() {
        let shared = crate::trace::SharedJournal::new(0);
        let mut sim = flood_sim(SimConfig {
            loss_prob: 0.5,
            seed: 3,
            ..SimConfig::default()
        });
        sim.set_trace(Box::new(shared.clone()));
        sim.fail_node(NodeId(15));
        sim.run_to_quiescence(100_000);
        let j = shared.take();
        let s = j.summary();
        assert!(s.sends > 0);
        assert!(s.drops_loss > 0, "50% loss must journal drops");
        assert_eq!(s.node_failures, 1);
        assert_eq!(s.sends_by_kind["ping"], s.sends);
        assert_eq!(
            s.sends,
            sim.metrics.total_tx(),
            "journal sends == metric tx"
        );
        // Queue high-water mark is tracked for run summaries.
        assert!(sim.max_queue_depth() > 0);
    }

    #[test]
    fn heap_and_wheel_journals_byte_identical() {
        // The tentpole contract: scheduler backend is observationally pure.
        // Same seed, lossy + ARQ config → identical journals either way.
        let wheel = journaled_flood(SimConfig {
            sched: Sched::Wheel,
            ..lossy_cfg()
        });
        let heap = journaled_flood(SimConfig {
            sched: Sched::Heap,
            ..lossy_cfg()
        });
        assert_eq!(
            wheel.first_divergence(&heap),
            None,
            "backends diverged: {:?} vs {:?}",
            wheel.first_divergence(&heap).map(|i| &wheel.records[i]),
            wheel
                .first_divergence(&heap)
                .and_then(|i| heap.records.get(i)),
        );
        assert_eq!(wheel.to_text(), heap.to_text());
        assert_eq!(wheel.content_hash(), heap.content_hash());
        assert!(!wheel.records.is_empty());
    }

    #[test]
    fn heap_and_wheel_agree_on_outcomes() {
        for sched in [Sched::Wheel, Sched::Heap] {
            let mut sim = flood_sim(SimConfig {
                sched,
                clock_skew_max: 20,
                loss_prob: 0.2,
                retries: 2,
                seed: 23,
                ..SimConfig::default()
            });
            sim.run_to_quiescence(100_000);
            assert!(sim.nodes().all(|n| n.seen), "{sched:?} flood incomplete");
        }
        let mut a = flood_sim(SimConfig {
            sched: Sched::Wheel,
            ..lossy_cfg()
        });
        let mut b = flood_sim(SimConfig {
            sched: Sched::Heap,
            ..lossy_cfg()
        });
        a.run_to_quiescence(100_000);
        b.run_to_quiescence(100_000);
        assert_eq!(a.metrics.total_tx(), b.metrics.total_tx());
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(a.max_queue_depth(), b.max_queue_depth());
        let ta: Vec<_> = a.nodes().map(|n| n.received_at).collect();
        let tb: Vec<_> = b.nodes().map(|n| n.received_at).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn shard_journal_matches_serial_oracle() {
        // The sharded backend's merged journal must be byte-identical to the
        // single-wheel oracle for any worker count, with windows forced on
        // (threshold 0) and under both inline and threaded execution.
        let oracle = journaled_flood(SimConfig {
            sched: Sched::Wheel,
            ..lossy_cfg()
        });
        for threads in [false, true] {
            for workers in [1usize, 2, 3, 4, 16, 64] {
                let cfg = SimConfig {
                    sched: Sched::Shard { workers },
                    ..lossy_cfg()
                };
                let shared = crate::trace::SharedJournal::new(cfg.seed);
                let mut sim = flood_sim(cfg);
                sim.set_shard_threading(threads);
                sim.set_shard_threshold(0); // force lockstep windows
                sim.set_trace(Box::new(shared.clone()));
                sim.run_to_quiescence(100_000);
                let j = shared.take();
                assert_eq!(
                    oracle.first_divergence(&j),
                    None,
                    "workers={workers} threads={threads} diverged: {:?} vs {:?}",
                    oracle.first_divergence(&j).map(|i| &oracle.records[i]),
                    oracle.first_divergence(&j).and_then(|i| j.records.get(i)),
                );
                assert_eq!(oracle.content_hash(), j.content_hash());
                let stats = sim.sched_stats();
                if workers > 1 {
                    assert!(stats.shard_windows > 0, "windows never opened");
                    assert!(stats.shard_regions > 1);
                }
            }
        }
        // Default threshold on a 16-node flood: the queue never reaches it,
        // so this exercises the pure serial-fallback path.
        let fallback = journaled_flood(SimConfig {
            sched: Sched::Shard { workers: 2 },
            ..lossy_cfg()
        });
        assert_eq!(oracle.content_hash(), fallback.content_hash());
    }

    #[test]
    fn shard_backend_agrees_on_outcomes_and_metrics() {
        let mut a = flood_sim(SimConfig {
            sched: Sched::Wheel,
            ..lossy_cfg()
        });
        a.fail_node(NodeId(9));
        a.run_to_quiescence(100_000);
        let mut b = flood_sim(SimConfig {
            sched: Sched::Shard { workers: 4 },
            ..lossy_cfg()
        });
        b.fail_node(NodeId(9));
        b.set_shard_threshold(0);
        b.run_to_quiescence(100_000);
        assert_eq!(a.metrics.total_tx(), b.metrics.total_tx());
        assert_eq!(a.metrics.total_rx(), b.metrics.total_rx());
        assert_eq!(a.metrics.kind_balance(), b.metrics.kind_balance());
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(a.now(), b.now());
        assert_eq!(a.sched_stats().pushes, b.sched_stats().pushes);
        assert_eq!(a.sched_stats().batched_msgs, b.sched_stats().batched_msgs);
        let ta: Vec<_> = a.nodes().map(|n| n.received_at).collect();
        let tb: Vec<_> = b.nodes().map(|n| n.received_at).collect();
        assert_eq!(ta, tb);
        // The heaviest per-node loads agree too (accumulated via the
        // window-barrier scratch flush rather than per-call recording).
        assert_eq!(a.metrics.max_node_load(), b.metrics.max_node_load());
    }

    #[test]
    fn drain_ready_empty_queue_is_noop() {
        let mut sim = flood_sim(SimConfig::default());
        sim.run_to_quiescence(100_000);
        assert!(sim.is_quiescent());
        let now = sim.now();
        let processed = sim.events_processed();
        // Draining an empty queue must not advance time or process events.
        sim.drain_ready(now + 50_000);
        assert_eq!(sim.now(), now);
        assert_eq!(sim.events_processed(), processed);
        assert!(!sim.step());
        // run_until on an empty queue still advances the wall clock.
        sim.run_until(now + 10);
        assert_eq!(sim.now(), now + 10);
    }

    #[test]
    fn zero_jitter_broadcast_batches_per_link() {
        // With a deterministic hop delay every broadcast send to a given
        // neighbor shares its arrival tick with... no other send (different
        // neighbors differ in `to`), so batching only triggers when the app
        // sends twice to one neighbor in one callback.
        struct DoubleSend {
            id: NodeId,
            heard: u32,
        }
        #[derive(Clone)]
        struct Two;
        impl MsgMeta for Two {
            fn size_bytes(&self) -> usize {
                4
            }
        }
        impl App for DoubleSend {
            type Msg = Two;
            fn on_start(&mut self, ctx: &mut Ctx<Two>) {
                if self.id == NodeId(0) {
                    let peers: Vec<NodeId> = ctx.neighbors().to_vec();
                    for p in peers {
                        ctx.send(p, Two);
                        ctx.send(p, Two); // same link, same tick → batched
                    }
                }
            }
            fn on_message(&mut self, _: &mut Ctx<Two>, _: NodeId, _: Two) {
                self.heard += 1;
            }
        }
        let cfg = SimConfig {
            hop_delay: (10, 10), // zero jitter: both sends arrive together
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(Topology::grid(2, 1), cfg, |id, _| DoubleSend {
            id,
            heard: 0,
        });
        sim.run_to_quiescence(1_000);
        assert_eq!(sim.node(NodeId(1)).heard, 2);
        let stats = sim.sched_stats();
        assert_eq!(stats.batched_msgs, 1, "second send rides the first");
        // Logical event count is per message, not per queue op.
        assert_eq!(sim.events_processed(), 2 + 2);
    }

    #[test]
    fn disabled_trace_changes_nothing() {
        // Runs with and without a sink produce identical outcomes: the
        // journal is an observer, never a participant.
        let mut plain = flood_sim(lossy_cfg());
        plain.run_to_quiescence(100_000);
        let shared = crate::trace::SharedJournal::new(lossy_cfg().seed);
        let mut traced = flood_sim(lossy_cfg());
        traced.set_trace(Box::new(shared.clone()));
        traced.run_to_quiescence(100_000);
        assert_eq!(plain.metrics.total_tx(), traced.metrics.total_tx());
        assert_eq!(plain.events_processed(), traced.events_processed());
        let ta: Vec<_> = plain.nodes().map(|n| n.received_at).collect();
        let tb: Vec<_> = traced.nodes().map(|n| n.received_at).collect();
        assert_eq!(ta, tb);
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;

    struct Echo {
        id: NodeId,
        heard: u32,
    }
    #[derive(Clone)]
    struct Beep;
    impl MsgMeta for Beep {
        fn size_bytes(&self) -> usize {
            1
        }
    }
    impl App for Echo {
        type Msg = Beep;
        fn on_start(&mut self, ctx: &mut Ctx<Beep>) {
            if self.id == NodeId(0) {
                ctx.broadcast(Beep);
                ctx.set_timer(100, 1);
            }
        }
        fn on_message(&mut self, _: &mut Ctx<Beep>, _: NodeId, _: Beep) {
            self.heard += 1;
        }
        fn on_timer(&mut self, ctx: &mut Ctx<Beep>, _: u64) {
            ctx.broadcast(Beep);
        }
    }

    #[test]
    fn failed_node_receives_nothing() {
        let mut sim = Simulator::new(Topology::grid(2, 1), SimConfig::default(), |id, _| Echo {
            id,
            heard: 0,
        });
        sim.fail_node(NodeId(1));
        sim.run_to_quiescence(10_000);
        assert!(sim.is_failed(NodeId(1)));
        assert_eq!(sim.node(NodeId(1)).heard, 0);
        assert!(
            sim.metrics.lost() >= 1,
            "drops at dead nodes count as losses"
        );
    }

    #[test]
    fn failed_node_fires_no_timers_and_sends_nothing() {
        let mut sim = Simulator::new(Topology::grid(2, 1), SimConfig::default(), |id, _| Echo {
            id,
            heard: 0,
        });
        // Let the start broadcast land, then kill node 0 before its timer.
        sim.run_until(50);
        sim.fail_node(NodeId(0));
        sim.run_to_quiescence(10_000);
        // Node 1 heard exactly the first broadcast, not the timer rebroadcast.
        assert_eq!(sim.node(NodeId(1)).heard, 1);
    }

    #[test]
    fn invoke_on_failed_node_is_noop() {
        let mut sim = Simulator::new(Topology::grid(2, 1), SimConfig::default(), |id, _| Echo {
            id,
            heard: 0,
        });
        sim.fail_node(NodeId(0));
        sim.invoke(NodeId(0), |app, ctx| {
            app.heard = 99;
            ctx.broadcast(Beep);
        });
        assert_eq!(sim.node(NodeId(0)).heard, 0);
    }
}

#[cfg(test)]
mod fault_plane_tests {
    use super::*;
    use crate::faults::FaultSchedule;
    use crate::trace::{DropReason, SharedJournal};

    /// Periodic chatter: every node re-broadcasts on a timer until
    /// `active_until`, so there is continuous traffic for faults to hit
    /// and guaranteed quiescence afterwards.
    struct Chatter {
        heard: u32,
        boots: u32,
        period: SimTime,
        active_until: SimTime,
    }
    #[derive(Clone)]
    struct Tick;
    impl MsgMeta for Tick {
        fn size_bytes(&self) -> usize {
            4
        }
        fn kind(&self) -> &'static str {
            "ping"
        }
    }
    impl App for Chatter {
        type Msg = Tick;
        fn on_start(&mut self, ctx: &mut Ctx<Tick>) {
            self.boots += 1;
            ctx.broadcast(Tick);
            if ctx.now < self.active_until {
                ctx.set_timer(self.period, 1);
            }
        }
        fn on_message(&mut self, _: &mut Ctx<Tick>, _: NodeId, _: Tick) {
            self.heard += 1;
        }
        fn on_timer(&mut self, ctx: &mut Ctx<Tick>, _: u64) {
            ctx.broadcast(Tick);
            if ctx.now < self.active_until {
                ctx.set_timer(self.period, 1);
            }
        }
    }

    fn chatter_sim(topo: Topology, cfg: SimConfig, active_until: SimTime) -> Simulator<Chatter> {
        Simulator::new(topo, cfg, move |_, _| Chatter {
            heard: 0,
            boots: 0,
            period: 100,
            active_until,
        })
    }

    #[test]
    fn crash_and_restart_loses_state_and_reboots() {
        let mut sim = chatter_sim(Topology::grid(2, 1), SimConfig::default(), 2_000);
        sim.set_fault_schedule(
            FaultSchedule::new()
                .crash(500, NodeId(1))
                .restart(1_000, NodeId(1)),
        );
        sim.run_to_quiescence(100_000);
        assert!(!sim.is_failed(NodeId(1)));
        // The replacement instance rebooted (on_restart defaults to
        // on_start) and heard only post-restart traffic.
        assert_eq!(sim.node(NodeId(1)).boots, 1);
        assert!(sim.node(NodeId(1)).heard > 0, "rejoined after restart");
        assert!(
            (sim.node(NodeId(1)).heard as u64) < sim.metrics.tx_of("ping"),
            "state loss: pre-crash receptions are gone"
        );
        // Drops while dead are booked under the dead-node reason.
        let by = sim.metrics.lost_by_reason();
        assert!(by[DropReason::DeadNode.index()] > 0);
    }

    #[test]
    fn restart_revives_a_quiesced_network() {
        // All chatter stops by t=200; the scheduled restart at t=5000 hits
        // an empty queue and must still fire, re-seeding traffic.
        let mut sim = chatter_sim(Topology::grid(2, 1), SimConfig::default(), 200);
        sim.set_fault_schedule(
            FaultSchedule::new()
                .crash(50, NodeId(1))
                .restart(5_000, NodeId(1)),
        );
        sim.run_to_quiescence(100_000);
        assert_eq!(sim.node(NodeId(1)).boots, 1);
        // The revived node's boot broadcast reached node 0 after t=5000.
        assert!(sim.now() >= 5_000, "restart advanced the clock");
        assert!(sim.node(NodeId(0)).heard > 0);
    }

    #[test]
    fn stale_timers_from_previous_incarnation_are_swallowed() {
        struct OneShot {
            fired: Vec<SimTime>,
        }
        #[derive(Clone)]
        struct Nil;
        impl MsgMeta for Nil {
            fn size_bytes(&self) -> usize {
                0
            }
        }
        impl App for OneShot {
            type Msg = Nil;
            fn on_start(&mut self, ctx: &mut Ctx<Nil>) {
                ctx.set_timer(1_000, 7);
            }
            fn on_message(&mut self, _: &mut Ctx<Nil>, _: NodeId, _: Nil) {}
            fn on_timer(&mut self, ctx: &mut Ctx<Nil>, _: u64) {
                self.fired.push(ctx.now);
            }
        }
        let mut sim = Simulator::new(Topology::grid(1, 1), SimConfig::default(), |_, _| OneShot {
            fired: Vec::new(),
        });
        // Crash at 500 (before the boot timer lands at 1000), restart at
        // 600. The incarnation-0 timer must be swallowed; only the
        // incarnation-1 timer (armed at 600, fires at 1600) runs.
        sim.set_fault_schedule(
            FaultSchedule::new()
                .crash(500, NodeId(0))
                .restart(600, NodeId(0)),
        );
        sim.run_to_quiescence(100_000);
        assert_eq!(sim.node(NodeId(0)).fired, vec![1_600]);
    }

    #[test]
    fn link_down_partitions_and_link_up_heals() {
        let mut sim = chatter_sim(Topology::grid(2, 1), SimConfig::default(), 4_000);
        sim.set_fault_schedule(
            FaultSchedule::new()
                .link_down(1_000, NodeId(0), NodeId(1))
                .link_up(2_000, NodeId(1), NodeId(0)),
        );
        let shared = SharedJournal::new(0);
        sim.set_trace(Box::new(shared.clone()));
        sim.run_to_quiescence(100_000);
        let by = sim.metrics.lost_by_reason();
        assert!(
            by[DropReason::Partition.index()] > 0,
            "sends during the partition drop with the partition reason"
        );
        assert_eq!(by[DropReason::Loss.index()], 0, "default loss is 0");
        // Both nodes kept hearing each other after the heal: roughly one
        // reception per period outside the partition window.
        assert!(sim.node(NodeId(0)).heard > 20);
        assert!(sim.node(NodeId(1)).heard > 20);
        let s = shared.take().summary();
        assert_eq!(s.link_faults, 2, "down + up journaled");
        assert_eq!(s.drops_partition, by[DropReason::Partition.index()]);
    }

    #[test]
    fn dup_window_duplicates_and_conserves() {
        // Single broadcast under an always-duplicate window: the neighbor
        // hears it twice and the duplicate books its own tx, keeping the
        // per-kind conservation tx == rx + lost intact.
        let mut sim = chatter_sim(Topology::grid(2, 1), SimConfig::default(), 0);
        sim.set_fault_schedule(FaultSchedule::new().dup_window(0, 10_000, 1_000_000));
        sim.run_to_quiescence(100_000);
        assert_eq!(sim.node(NodeId(0)).heard, 2);
        assert_eq!(sim.node(NodeId(1)).heard, 2);
        for (kind, tx, rx, lost) in sim.metrics.kind_balance() {
            assert_eq!(tx, rx + lost, "{kind} conservation broke under dup");
        }
        assert_eq!(sim.metrics.tx_of("ping"), 4);
    }

    #[test]
    fn reorder_window_is_deterministic() {
        let run = |jitter: SimTime| {
            let shared = SharedJournal::new(9);
            let mut sim = chatter_sim(
                Topology::square_grid(3),
                SimConfig {
                    seed: 9,
                    ..SimConfig::default()
                },
                1_000,
            );
            if jitter > 0 {
                sim.set_fault_schedule(FaultSchedule::new().reorder_window(0, 2_000, jitter));
            }
            sim.set_trace(Box::new(shared.clone()));
            sim.run_to_quiescence(100_000);
            shared.take()
        };
        let a = run(40);
        let b = run(40);
        assert_eq!(a.content_hash(), b.content_hash(), "same script, same run");
        let plain = run(0);
        assert_ne!(
            a.content_hash(),
            plain.content_hash(),
            "reorder jitter must actually perturb the delivery schedule"
        );
    }

    /// Satellite regression: a crash scheduled at an arbitrary mid-window
    /// tick takes effect at exactly that tick under `Sched::Shard` — the
    /// lockstep window is clamped at the fault, so shard journals stay
    /// byte-identical to the wheel oracle.
    #[test]
    fn shard_matches_wheel_under_exact_tick_crash_schedule() {
        // 137/1201 are deliberately not multiples of the 30-tick lookahead
        // (hop_delay.0) so an unclamped window would straddle the fault.
        let schedule = FaultSchedule::new()
            .crash(137, NodeId(4))
            .restart(1_201, NodeId(4))
            .link_down(433, NodeId(0), NodeId(1))
            .link_up(977, NodeId(1), NodeId(0));
        let run = |sched: Sched| {
            let cfg = SimConfig {
                sched,
                loss_prob: 0.1,
                seed: 21,
                ..SimConfig::default()
            };
            let shared = SharedJournal::new(cfg.seed);
            let mut sim = chatter_sim(Topology::square_grid(4), cfg, 3_000);
            sim.set_shard_threshold(0); // force lockstep windows
            sim.set_fault_schedule(schedule.clone());
            sim.set_trace(Box::new(shared.clone()));
            sim.run_to_quiescence(100_000);
            shared.take()
        };
        let oracle = run(Sched::Wheel);
        let heap = run(Sched::Heap);
        assert_eq!(oracle.content_hash(), heap.content_hash());
        for workers in [1usize, 2, 3, 4] {
            let j = run(Sched::Shard { workers });
            assert_eq!(
                oracle.first_divergence(&j),
                None,
                "workers={workers} diverged: {:?} vs {:?}",
                oracle.first_divergence(&j).map(|i| &oracle.records[i]),
                oracle.first_divergence(&j).and_then(|i| j.records.get(i)),
            );
            assert_eq!(oracle.content_hash(), j.content_hash());
        }
        assert!(!oracle.records.is_empty());
    }
}
