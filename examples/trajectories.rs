//! Example 2 of the paper: trajectory synthesis with function symbols.
//!
//! Vehicle detections `report(r(x, y, t))` are stitched into trajectory
//! *lists* — exactly why the framework needs function symbols ("function
//! symbols are required when we want to create non-atomic values"). A pair
//! of trajectories is then tested for parallelism with the procedural
//! `is_parallel` builtin.
//!
//! ```text
//! cargo run --example trajectories
//! ```

use sensorlog::logic::builtin::stdlib;
use sensorlog::prelude::*;

/// Example 2 (Sec. II-B), with the paper's close/IsParallel builtins.
/// Trajectory lists grow at the head, so `first(T)` is the most recent
/// report; `R == first(T)` binds it via the assignment form.
const PROGRAM: &str = r#"
    notstart(R2)   :- report(R1), report(R2), close(R1, R2, 3, 2).
    notlast(R1)    :- report(R1), report(R2), close(R1, R2, 3, 2).

    traj([R2, R1]) :- report(R1), report(R2), close(R1, R2, 3, 2),
                      not notstart(R1).
    traj([R2 | T]) :- traj(T), R1 == first(T), report(R2),
                      close(R1, R2, 3, 2).

    complete(T)      :- traj(T), R == first(T), not notlast(R).
    parallel(L1, L2) :- complete(L1), complete(L2), L1 < L2,
                        is_parallel(L1, L2, 0.1).
"#;

fn main() {
    let mut reg = BuiltinRegistry::standard();
    stdlib::register_tracking(&mut reg); // close(R1,R2,Dmax,Tmax), is_parallel(L1,L2,Tol)
    stdlib::register_lists(&mut reg); // first/len/append/member/…

    let engine = Engine::from_source(PROGRAM, reg).expect("program analyzes");
    println!("program class: {:?}", engine.analysis.class);

    // Two parallel eastbound tracks and one northbound track.
    let mut edb = Database::new();
    edb.load_facts(
        r#"
        report(r(0, 0, 0)).  report(r(2, 0, 1)).  report(r(4, 0, 2)).
        report(r(0, 5, 0)).  report(r(2, 5, 1)).  report(r(4, 5, 2)).
        report(r(9, 0, 0)).  report(r(9, 2, 1)).  report(r(9, 4, 2)).
        "#,
    )
    .unwrap();

    let out = engine.run(&edb).unwrap();
    println!("\ncomplete trajectories:");
    for t in out.sorted(Symbol::intern("complete")) {
        println!("  {}", t.get(0));
    }
    println!("\nparallel pairs:");
    let pairs = out.sorted(Symbol::intern("parallel"));
    for t in &pairs {
        println!("  {}  ∥  {}", t.get(0), t.get(1));
    }
    assert_eq!(
        out.len_of(Symbol::intern("complete")),
        3,
        "three complete trajectories expected"
    );
    assert_eq!(
        pairs.len(),
        1,
        "exactly the two eastbound tracks are parallel"
    );
    println!("\nok: trajectory synthesis via function symbols works end-to-end");
}
