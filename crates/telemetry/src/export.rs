//! Exporters: JSONL snapshot (the stable machine format feeding
//! `BENCH_*.json`), Prometheus-style text, and a human-readable table.
//!
//! The JSONL schema is covered by [`Snapshot::schema_fingerprint`]: the
//! fingerprint is derived from the same per-record field lists the writer
//! uses, so any drift in the emitted fields changes the fingerprint and
//! trips the golden-file check in CI.

use crate::histogram::Histogram;
use crate::profiler::Profiler;
use crate::registry::MetricsRegistry;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Field lists per JSONL record type — the single source of truth shared by
/// the writer and the schema fingerprint.
const COUNTER_FIELDS: &[&str] = &["type", "scope", "name", "value"];
const GAUGE_FIELDS: &[&str] = &["type", "scope", "name", "value"];
const HIST_FIELDS: &[&str] = &[
    "type", "scope", "name", "bounds", "counts", "overflow", "count", "sum", "min", "max",
];
const PHASE_FIELDS: &[&str] = &["type", "name", "count", "wall_ns", "sim_ms"];
const META_FIELDS: &[&str] = &["type", "key", "value"];

/// The scope string used for network-wide histogram rollups.
pub const MERGED_SCOPE: &str = "merged";

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterRow {
    pub scope: String,
    pub name: String,
    pub value: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeRow {
    pub scope: String,
    pub name: String,
    pub value: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistRow {
    pub scope: String,
    pub name: String,
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub overflow: u64,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRow {
    pub name: String,
    pub count: u64,
    pub wall_ns: u64,
    pub sim_ms: u64,
}

/// A fully materialized telemetry export: registry contents, profiler
/// phases, and free-form metadata. Decoupled from the live registry (all
/// strings owned) so it can outlive the run and be attached to bench
/// points.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub meta: BTreeMap<String, String>,
    pub counters: Vec<CounterRow>,
    pub gauges: Vec<GaugeRow>,
    pub hists: Vec<HistRow>,
    pub phases: Vec<PhaseRow>,
}

fn hist_row(scope: String, name: &str, h: &Histogram) -> HistRow {
    HistRow {
        scope,
        name: name.to_string(),
        bounds: h.bounds().to_vec(),
        counts: h.bucket_counts().to_vec(),
        overflow: h.overflow(),
        count: h.count(),
        sum: h.sum(),
        min: h.min().unwrap_or(0),
        max: h.max().unwrap_or(0),
    }
}

impl Snapshot {
    /// Append everything in `reg`, including a network-wide `merged` row
    /// for every histogram name recorded under more than zero scopes.
    pub fn absorb_registry(&mut self, reg: &MetricsRegistry) {
        for (key, v) in reg.counters() {
            self.counters.push(CounterRow {
                scope: key.scope.to_string(),
                name: key.name.to_string(),
                value: v,
            });
        }
        for (key, v) in reg.gauges() {
            self.gauges.push(GaugeRow {
                scope: key.scope.to_string(),
                name: key.name.to_string(),
                value: v,
            });
        }
        for (key, h) in reg.hists() {
            self.hists
                .push(hist_row(key.scope.to_string(), key.name, h));
        }
        for name in reg.hist_names() {
            if let Some(m) = reg.merged_hist(name) {
                self.hists
                    .push(hist_row(MERGED_SCOPE.to_string(), name, &m));
            }
        }
    }

    /// Append all profiler phases.
    pub fn absorb_profiler(&mut self, prof: &Profiler) {
        for (name, stat) in prof.phases() {
            self.phases.push(PhaseRow {
                name: name.to_string(),
                count: stat.count,
                wall_ns: stat.wall_ns,
                sim_ms: stat.sim_ms,
            });
        }
    }

    /// Counter value by rendered scope string (e.g. `"pred:path"`); 0 if
    /// absent.
    pub fn counter(&self, scope: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.scope == scope && c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Sum of `name` counters across all scopes with the given prefix
    /// (e.g. prefix `"pred:"` sums a per-predicate counter network-wide).
    pub fn counter_sum(&self, scope_prefix: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.scope.starts_with(scope_prefix) && c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Gauge value by rendered scope string (e.g. `"global"`); 0 if absent.
    pub fn gauge(&self, scope: &str, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|g| g.scope == scope && g.name == name)
            .map_or(0, |g| g.value)
    }

    pub fn phase(&self, name: &str) -> Option<&PhaseRow> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// The network-wide rollup row for histogram `name`.
    pub fn merged_hist(&self, name: &str) -> Option<&HistRow> {
        self.hists
            .iter()
            .find(|h| h.scope == MERGED_SCOPE && h.name == name)
    }

    /// Distinct predicate names appearing in `pred:`-scoped counters.
    pub fn pred_scopes(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .counters
            .iter()
            .filter_map(|c| c.scope.strip_prefix("pred:").map(str::to_string))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    // ---- JSONL ----

    /// One JSON object per line; `meta` lines first, then counters, gauges,
    /// histograms, phases — each already in deterministic order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.meta {
            writeln!(
                out,
                r#"{{"type":"meta","key":{},"value":{}}}"#,
                json_str(k),
                json_str(v)
            )
            .unwrap();
        }
        for c in &self.counters {
            writeln!(
                out,
                r#"{{"type":"counter","scope":{},"name":{},"value":{}}}"#,
                json_str(&c.scope),
                json_str(&c.name),
                c.value
            )
            .unwrap();
        }
        for g in &self.gauges {
            writeln!(
                out,
                r#"{{"type":"gauge","scope":{},"name":{},"value":{}}}"#,
                json_str(&g.scope),
                json_str(&g.name),
                g.value
            )
            .unwrap();
        }
        for h in &self.hists {
            writeln!(
                out,
                r#"{{"type":"hist","scope":{},"name":{},"bounds":{},"counts":{},"overflow":{},"count":{},"sum":{},"min":{},"max":{}}}"#,
                json_str(&h.scope),
                json_str(&h.name),
                json_u64s(&h.bounds),
                json_u64s(&h.counts),
                h.overflow,
                h.count,
                h.sum,
                h.min,
                h.max
            )
            .unwrap();
        }
        for p in &self.phases {
            writeln!(
                out,
                r#"{{"type":"phase","name":{},"count":{},"wall_ns":{},"sim_ms":{}}}"#,
                json_str(&p.name),
                p.count,
                p.wall_ns,
                p.sim_ms
            )
            .unwrap();
        }
        out
    }

    /// Stable description of the JSONL record shapes. Compared against a
    /// golden file in CI so accidental schema drift fails loudly.
    pub fn schema_fingerprint() -> String {
        let mut out = String::new();
        for (ty, fields) in [
            ("meta", META_FIELDS),
            ("counter", COUNTER_FIELDS),
            ("gauge", GAUGE_FIELDS),
            ("hist", HIST_FIELDS),
            ("phase", PHASE_FIELDS),
        ] {
            writeln!(out, "{ty}: {}", fields.join(" ")).unwrap();
        }
        out
    }

    // ---- Prometheus-style text ----

    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            writeln!(
                out,
                "sensorlog_{}{{scope=\"{}\"}} {}",
                prom_name(&c.name),
                prom_label_escape(&c.scope),
                c.value
            )
            .unwrap();
        }
        for g in &self.gauges {
            writeln!(
                out,
                "sensorlog_{}{{scope=\"{}\"}} {}",
                prom_name(&g.name),
                prom_label_escape(&g.scope),
                g.value
            )
            .unwrap();
        }
        for h in &self.hists {
            let name = prom_name(&h.name);
            let scope = prom_label_escape(&h.scope);
            let mut cum = 0u64;
            for (b, c) in h.bounds.iter().zip(&h.counts) {
                cum += c;
                writeln!(
                    out,
                    "sensorlog_{name}_bucket{{scope=\"{scope}\",le=\"{b}\"}} {cum}"
                )
                .unwrap();
            }
            writeln!(
                out,
                "sensorlog_{name}_bucket{{scope=\"{scope}\",le=\"+Inf\"}} {}",
                h.count
            )
            .unwrap();
            writeln!(out, "sensorlog_{name}_sum{{scope=\"{scope}\"}} {}", h.sum).unwrap();
            writeln!(
                out,
                "sensorlog_{name}_count{{scope=\"{scope}\"}} {}",
                h.count
            )
            .unwrap();
        }
        for p in &self.phases {
            let name = prom_name(&p.name);
            writeln!(out, "sensorlog_phase_count{{phase=\"{name}\"}} {}", p.count).unwrap();
            writeln!(
                out,
                "sensorlog_phase_wall_ns{{phase=\"{name}\"}} {}",
                p.wall_ns
            )
            .unwrap();
            writeln!(
                out,
                "sensorlog_phase_sim_ms{{phase=\"{name}\"}} {}",
                p.sim_ms
            )
            .unwrap();
        }
        out
    }

    // ---- human-readable table ----

    pub fn to_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                writeln!(out, "  {:<28} {:<20} {:>12}", c.scope, c.name, c.value).unwrap();
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                writeln!(out, "  {:<28} {:<20} {:>12}", g.scope, g.name, g.value).unwrap();
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.hists {
                let mean = if h.count == 0 {
                    0.0
                } else {
                    h.sum as f64 / h.count as f64
                };
                writeln!(
                    out,
                    "  {:<28} {:<20} n={:<8} mean={:<10.1} max={}",
                    h.scope, h.name, h.count, mean, h.max
                )
                .unwrap();
            }
        }
        if !self.phases.is_empty() {
            out.push_str("phases:\n");
            for p in &self.phases {
                writeln!(
                    out,
                    "  {:<28} n={:<8} wall={:>10.3}ms sim={:>8}ms",
                    p.name,
                    p.count,
                    p.wall_ns as f64 / 1e6,
                    p.sim_ms
                )
                .unwrap();
            }
        }
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_u64s(xs: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(out, "{x}").unwrap();
    }
    out.push(']');
    out
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escape a label *value* per the Prometheus exposition format: backslash,
/// double quote, and newline must be escaped (`\\`, `\"`, `\n`) or the
/// emitted line is unparseable / splits into two samples.
fn prom_label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricsRegistry, Scope};

    fn sample() -> Snapshot {
        let mut reg = MetricsRegistry::new();
        reg.bump(Scope::Pred("path"), "sent_probe", 7);
        reg.bump(Scope::Node(2), "tx", 3);
        reg.gauge_max(Scope::Global, "peak_mem", 512);
        reg.observe(Scope::Node(0), "tx_bytes", &[8, 64], 5);
        reg.observe(Scope::Node(1), "tx_bytes", &[8, 64], 100);
        let prof = Profiler::enabled();
        prof.record_sim("join.latency", 42);
        let mut snap = Snapshot::default();
        snap.meta.insert("experiment".into(), "unit".into());
        snap.absorb_registry(&reg);
        snap.absorb_profiler(&prof);
        snap
    }

    #[test]
    fn jsonl_contains_all_record_types_and_merged_hist() {
        let s = sample();
        let j = s.to_jsonl();
        assert!(j.contains(r#""type":"meta""#));
        assert!(j.contains(r#""type":"counter""#));
        assert!(j.contains(r#""type":"gauge""#));
        assert!(j.contains(r#""type":"hist""#));
        assert!(j.contains(r#""type":"phase""#));
        assert!(j.contains(r#""scope":"merged","name":"tx_bytes""#));
        // Every line parses as a standalone object shape.
        for line in j.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let m = s.merged_hist("tx_bytes").unwrap();
        assert_eq!(m.count, 2);
        assert_eq!(m.overflow, 1);
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert_eq!(s.counter("pred:path", "sent_probe"), 7);
        assert_eq!(s.counter("pred:none", "sent_probe"), 0);
        assert_eq!(s.counter_sum("pred:", "sent_probe"), 7);
        assert_eq!(s.pred_scopes(), vec!["path".to_string()]);
        assert_eq!(s.phase("join.latency").unwrap().sim_ms, 42);
    }

    #[test]
    fn schema_fingerprint_is_stable_shape() {
        let fp = Snapshot::schema_fingerprint();
        assert!(fp.contains("counter: type scope name value"));
        assert!(fp.contains("hist: type scope name bounds counts overflow count sum min max"));
        assert!(fp.contains("phase: type name count wall_ns sim_ms"));
    }

    #[test]
    fn prometheus_rendering_cumulates_buckets() {
        let s = sample();
        let p = s.to_prometheus();
        assert!(p.contains(r#"sensorlog_sent_probe{scope="pred:path"} 7"#));
        assert!(p.contains(r#"le="+Inf""#));
        assert!(p.contains("sensorlog_phase_sim_ms"));
    }

    #[test]
    fn prometheus_escapes_hostile_label_values() {
        // A scope carrying backslash, quote, and newline (e.g. a predicate
        // named from untrusted program source) must not break the
        // exposition format or split a sample across lines.
        let mut snap = Snapshot::default();
        snap.counters.push(CounterRow {
            scope: "pred:a\\b\"c\nd".into(),
            name: "sent_probe".into(),
            value: 1,
        });
        snap.hists.push(HistRow {
            scope: "line1\nline2".into(),
            name: "tx_bytes".into(),
            bounds: vec![8],
            counts: vec![1],
            overflow: 0,
            count: 1,
            sum: 4,
            min: 4,
            max: 4,
        });
        let p = snap.to_prometheus();
        assert!(
            p.contains(r#"scope="pred:a\\b\"c\nd""#),
            "counter label not escaped:\n{p}"
        );
        assert!(
            p.contains(r#"scope="line1\nline2""#),
            "histogram label not escaped:\n{p}"
        );
        // Every line must still be a well-formed `name{labels} value`
        // sample: no raw newline may have leaked into a label value.
        for line in p.lines() {
            assert!(
                line.is_empty() || line.ends_with(|c: char| c.is_ascii_digit()),
                "split sample line: {line:?}"
            );
        }
    }

    #[test]
    fn prom_label_escape_is_minimal() {
        assert_eq!(prom_label_escape("plain"), "plain");
        assert_eq!(prom_label_escape("a\\b"), "a\\\\b");
        assert_eq!(prom_label_escape("a\"b"), "a\\\"b");
        assert_eq!(prom_label_escape("a\nb"), "a\\nb");
    }

    #[test]
    fn table_rendering_mentions_every_section() {
        let t = sample().to_table();
        for section in ["counters:", "gauges:", "histograms:", "phases:"] {
            assert!(t.contains(section), "missing {section}");
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
