//! Bench smoke run: one small, fast deployment with telemetry enabled,
//! exported as `BENCH_smoke.json` (JSONL snapshot records), plus a golden
//! check that the snapshot schema hasn't drifted.
//!
//! ```text
//! smoke --quick [--out BENCH_smoke.json]
//! ```
//!
//! CI runs `--quick` after the release build: it proves the telemetry
//! pipeline end-to-end (deploy → instrument → snapshot → JSONL) in a few
//! hundred milliseconds, and fails if either the emitted record schema
//! diverges from `crates/bench/golden/snapshot_schema.txt` or the run
//! produced an implausibly empty snapshot.

use sensorlog_bench::common::run_case;
use sensorlog_core::workload::UniformStreams;
use sensorlog_core::{PassMode, Strategy};
use sensorlog_logic::Symbol;
use sensorlog_netsim::{SimConfig, Topology};
use sensorlog_telemetry::Snapshot;
use std::process::ExitCode;

const JOIN2: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

const GOLDEN_SCHEMA: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/snapshot_schema.txt");

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_smoke.json".into());

    // Golden check first: schema drift should fail even if the run would.
    let want = match std::fs::read_to_string(GOLDEN_SCHEMA) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smoke: cannot read golden schema {GOLDEN_SCHEMA}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let got = Snapshot::schema_fingerprint();
    if got != want {
        eprintln!(
            "smoke: snapshot schema drifted from golden file.\n\
             If the change is intentional, update {GOLDEN_SCHEMA}.\n\
             --- golden ---\n{want}--- current ---\n{got}"
        );
        return ExitCode::FAILURE;
    }

    let m: u32 = if quick { 4 } else { 8 };
    let topo = Topology::square_grid(m);
    let events = UniformStreams {
        preds: vec![Symbol::intern("r1"), Symbol::intern("r2")],
        interval: 8_000,
        duration: 16_000,
        delete_fraction: 0.0,
        delete_lag: 0,
        groups: m * m * 2,
        seed: 41 + m as u64,
    }
    .events(&topo);
    let point = run_case(
        JOIN2,
        topo,
        Strategy::Perpendicular { band_width: 1.0 },
        PassMode::OnePass,
        SimConfig::default(),
        None,
        events,
        Symbol::intern("q"),
        30_000_000,
    );

    let snap = &point.snapshot;
    let plausible = point.total_tx > 0
        && !snap.pred_scopes().is_empty()
        && snap.phase("sim.deliver").is_some()
        && snap.merged_hist("tx_bytes").is_some();
    if !plausible {
        eprintln!(
            "smoke: snapshot implausibly empty (tx={}, preds={:?})",
            point.total_tx,
            snap.pred_scopes()
        );
        return ExitCode::FAILURE;
    }

    if let Err(e) = std::fs::write(&out_path, snap.to_jsonl()) {
        eprintln!("smoke: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "smoke OK: m={m} tx={} counters={} hists={} phases={} -> {out_path}",
        point.total_tx,
        snap.counters.len(),
        snap.hists.len(),
        snap.phases.len()
    );
    ExitCode::SUCCESS
}
