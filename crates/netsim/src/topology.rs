//! Network topologies: 2D grids (the paper's primary evaluation setting,
//! Sec. III-A) and connected random geometric graphs (for the "PA in
//! General Networks" extension).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Node identifier: index into the topology's node list.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Sampling a connected random geometric graph failed: the requested
/// density (`n` nodes, square side, radius) never produced a connected
/// graph within the attempt budget.
#[derive(Clone, Debug, PartialEq)]
pub struct ConnectivityError {
    pub n: usize,
    pub side: f64,
    pub radius: f64,
    pub attempts: u32,
}

impl fmt::Display for ConnectivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "could not sample a connected geometric graph in {} attempts \
             (n={}, side={}, radius={}): raise the radius or density",
            self.attempts, self.n, self.side, self.radius
        )
    }
}

impl std::error::Error for ConnectivityError {}

/// Topology kinds (used by routing to pick strategies).
#[derive(Clone, Debug, PartialEq)]
pub enum TopologyKind {
    /// `cols × rows` grid, unit spacing, unit transmission radius
    /// (4-neighborhood: diagonal distance √2 exceeds the unit radius).
    Grid { cols: u32, rows: u32 },
    /// Random geometric graph in a `[0, side] × [0, side]` square.
    Geometric { side: f64, radius: f64 },
}

/// An immutable network topology: node positions plus the unit-disk
/// adjacency.
#[derive(Clone, Debug)]
pub struct Topology {
    pub kind: TopologyKind,
    positions: Vec<(f64, f64)>,
    adjacency: Vec<Vec<NodeId>>,
}

impl Topology {
    /// `cols × rows` grid with unit spacing. Node `(x, y)` has id
    /// `y * cols + x` — x grows rightward, y upward.
    pub fn grid(cols: u32, rows: u32) -> Topology {
        assert!(cols > 0 && rows > 0, "empty grid");
        let n = (cols * rows) as usize;
        let mut positions = Vec::with_capacity(n);
        for y in 0..rows {
            for x in 0..cols {
                positions.push((x as f64, y as f64));
            }
        }
        let mut adjacency = vec![Vec::new(); n];
        let id = |x: u32, y: u32| NodeId(y * cols + x);
        for y in 0..rows {
            for x in 0..cols {
                let mut neigh = Vec::new();
                if x > 0 {
                    neigh.push(id(x - 1, y));
                }
                if x + 1 < cols {
                    neigh.push(id(x + 1, y));
                }
                if y > 0 {
                    neigh.push(id(x, y - 1));
                }
                if y + 1 < rows {
                    neigh.push(id(x, y + 1));
                }
                adjacency[id(x, y).index()] = neigh;
            }
        }
        Topology {
            kind: TopologyKind::Grid { cols, rows },
            positions,
            adjacency,
        }
    }

    /// Square grid `m × m`.
    pub fn square_grid(m: u32) -> Topology {
        Topology::grid(m, m)
    }

    /// Connected random geometric graph: `n` nodes uniform in a square of
    /// side `side`, connected iff within `radius`. Re-samples (up to 200
    /// attempts) until connected; returns [`ConnectivityError`] if the
    /// density is hopeless, so callers can report a usable diagnosis
    /// instead of crashing mid-experiment.
    pub fn random_geometric(
        n: usize,
        side: f64,
        radius: f64,
        seed: u64,
    ) -> Result<Topology, ConnectivityError> {
        assert!(n > 0);
        const ATTEMPTS: u32 = 200;
        let mut rng = StdRng::seed_from_u64(seed);
        for _attempt in 0..ATTEMPTS {
            let positions: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen::<f64>() * side, rng.gen::<f64>() * side))
                .collect();
            let mut adjacency = vec![Vec::new(); n];
            for i in 0..n {
                for j in (i + 1)..n {
                    let (x1, y1) = positions[i];
                    let (x2, y2) = positions[j];
                    if (x1 - x2).powi(2) + (y1 - y2).powi(2) <= radius * radius {
                        adjacency[i].push(NodeId(j as u32));
                        adjacency[j].push(NodeId(i as u32));
                    }
                }
            }
            let topo = Topology {
                kind: TopologyKind::Geometric { side, radius },
                positions,
                adjacency,
            };
            if topo.is_connected() {
                return Ok(topo);
            }
        }
        Err(ConnectivityError {
            n,
            side,
            radius,
            attempts: ATTEMPTS,
        })
    }

    /// Geometric topology from explicit node positions with unit-disk
    /// adjacency at `radius`. Unlike [`Topology::random_geometric`] this
    /// does *not* require connectivity — testbed layouts and
    /// partition/fault experiments need disconnected graphs.
    pub fn from_positions(positions: Vec<(f64, f64)>, radius: f64) -> Topology {
        let n = positions.len();
        let side = positions
            .iter()
            .flat_map(|&(x, y)| [x, y])
            .fold(0.0f64, f64::max);
        let mut adjacency = vec![Vec::new(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                let (x1, y1) = positions[i];
                let (x2, y2) = positions[j];
                if (x1 - x2).powi(2) + (y1 - y2).powi(2) <= radius * radius {
                    adjacency[i].push(NodeId(j as u32));
                    adjacency[j].push(NodeId(i as u32));
                }
            }
        }
        Topology {
            kind: TopologyKind::Geometric { side, radius },
            positions,
            adjacency,
        }
    }

    pub fn len(&self) -> usize {
        self.positions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.positions.len() as u32).map(NodeId)
    }

    pub fn position(&self, id: NodeId) -> (f64, f64) {
        self.positions[id.index()]
    }

    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.adjacency[id.index()]
    }

    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a.index()].contains(&b)
    }

    /// Grid coordinates of a node (grid topologies only).
    pub fn grid_coords(&self, id: NodeId) -> Option<(u32, u32)> {
        match self.kind {
            TopologyKind::Grid { cols, .. } => Some((id.0 % cols, id.0 / cols)),
            _ => None,
        }
    }

    /// Node at grid coordinates (grid topologies only).
    pub fn node_at(&self, x: u32, y: u32) -> Option<NodeId> {
        match self.kind {
            TopologyKind::Grid { cols, rows } => {
                if x < cols && y < rows {
                    Some(NodeId(y * cols + x))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    pub fn grid_dims(&self) -> Option<(u32, u32)> {
        match self.kind {
            TopologyKind::Grid { cols, rows } => Some((cols, rows)),
            _ => None,
        }
    }

    /// Euclidean distance between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        let (x1, y1) = self.position(a);
        let (x2, y2) = self.position(b);
        ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
    }

    /// BFS connectivity check.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.len()
    }

    /// Hop distance (BFS); `None` if unreachable.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.len()];
        dist[a.index()] = 0;
        let mut queue = std::collections::VecDeque::from([a]);
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    if w == b {
                        return Some(dist[w.index()]);
                    }
                    queue.push_back(w);
                }
            }
        }
        None
    }

    /// The node whose position is closest to `(x, y)` (geographic-hash
    /// target resolution).
    pub fn closest_node(&self, x: f64, y: f64) -> NodeId {
        let mut best = NodeId(0);
        let mut best_d = f64::INFINITY;
        for id in self.nodes() {
            let (px, py) = self.position(id);
            let d = (px - x).powi(2) + (py - y).powi(2);
            if d < best_d {
                best_d = d;
                best = id;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let t = Topology::grid(4, 3);
        assert_eq!(t.len(), 12);
        assert_eq!(t.grid_coords(NodeId(0)), Some((0, 0)));
        assert_eq!(t.grid_coords(NodeId(5)), Some((1, 1)));
        assert_eq!(t.node_at(1, 1), Some(NodeId(5)));
        assert_eq!(t.node_at(4, 0), None);
        assert_eq!(t.position(NodeId(5)), (1.0, 1.0));
    }

    #[test]
    fn grid_neighbors_four_connected() {
        let t = Topology::square_grid(3);
        // corner has 2, edge 3, center 4
        assert_eq!(t.neighbors(NodeId(0)).len(), 2);
        assert_eq!(t.neighbors(NodeId(1)).len(), 3);
        assert_eq!(t.neighbors(NodeId(4)).len(), 4);
        assert!(t.are_neighbors(NodeId(0), NodeId(1)));
        assert!(!t.are_neighbors(NodeId(0), NodeId(4))); // diagonal
    }

    #[test]
    fn grid_connected_and_hops() {
        let t = Topology::square_grid(5);
        assert!(t.is_connected());
        // Manhattan distance in a grid.
        assert_eq!(t.hop_distance(NodeId(0), NodeId(24)), Some(8));
        assert_eq!(t.hop_distance(NodeId(7), NodeId(7)), Some(0));
    }

    #[test]
    fn random_geometric_connected_deterministic() {
        let t1 = Topology::random_geometric(30, 5.0, 1.6, 42).unwrap();
        let t2 = Topology::random_geometric(30, 5.0, 1.6, 42).unwrap();
        assert!(t1.is_connected());
        assert_eq!(t1.position(NodeId(7)), t2.position(NodeId(7)));
        // Unit-disk property.
        for id in t1.nodes() {
            for &n in t1.neighbors(id) {
                assert!(t1.distance(id, n) <= 1.6 + 1e-9);
            }
        }
    }

    #[test]
    fn hopeless_density_is_an_error_not_a_panic() {
        // 40 nodes in a 100×100 square with radius 0.5 can essentially
        // never be connected: the sampler must report, not crash.
        let err = Topology::random_geometric(40, 100.0, 0.5, 1).unwrap_err();
        assert_eq!(err.attempts, 200);
        assert!(err.to_string().contains("radius=0.5"));
    }

    #[test]
    fn closest_node_resolution() {
        let t = Topology::square_grid(4);
        assert_eq!(t.closest_node(0.1, 0.2), NodeId(0));
        assert_eq!(t.closest_node(2.9, 3.1), t.node_at(3, 3).unwrap());
    }

    #[test]
    fn distance_metric() {
        let t = Topology::square_grid(3);
        assert!((t.distance(NodeId(0), NodeId(8)) - 8f64.sqrt()).abs() < 1e-9);
    }
}
