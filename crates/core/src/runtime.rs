//! The per-node runtime: the compiled program's node state machine
//! (Sec. V, Fig. 3 — "the join component at a sensor node").
//!
//! Each node holds replicated fragments of the streams whose storage
//! regions cross it, runs the storage and join-computation phases of the
//! Generalized Perpendicular Approach, and — for derived tuples it owns
//! under the geographic hash — maintains the set of derivations with
//! multiplicity counts and propagates liveness transitions as new stream
//! updates (Secs. III-B, IV).

use crate::durable::DurableStore;
use crate::msg::{Payload, ProbeMsg, RuleWork};
use crate::partial::{process_partials, seed_partial, LocalCtx, Partial, RuleShape};
use crate::plan::DistProgram;
use crate::prov::{ProvRecord, Provenance};
use crate::strategy::{PassMode, Strategy};
use crate::tupleid::{DerivationKey, FactRecord, TupleId};
use sensorlog_eval::relation::{Database, TupleMeta};
use sensorlog_eval::{IncrementalEngine, Update, UpdateKind};
use sensorlog_logic::{Symbol, Tuple};
use sensorlog_netsim::{App, Ctx, MsgMeta, NodeId, SimTime, Topology, TopologyKind};
use sensorlog_netstack::ght;
use sensorlog_telemetry::{Histogram, Scope, Telemetry, SIM_MS_BUCKETS};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Shared routing context: the topology plus (off-grid) precomputed BFS
/// next-hop tables.
#[derive(Debug)]
pub struct NetInfo {
    pub topo: Topology,
    next_hop_tbl: Option<Vec<Vec<u32>>>,
    /// Network depth in hops: the longest route a message can take
    /// (grid diameter, or BFS eccentricity of node 0 off-grid). Scales
    /// per-hop latency estimates up to end-to-end bounds; always ≥ 1.
    depth: SimTime,
}

impl NetInfo {
    pub fn new(topo: Topology) -> NetInfo {
        let (next_hop_tbl, depth) = match topo.kind {
            TopologyKind::Grid { cols, rows } => (None, (cols + rows).saturating_sub(2) as SimTime),
            _ => (
                Some(build_next_hop(&topo)),
                bfs_eccentricity(&topo, NodeId(0)),
            ),
        };
        NetInfo {
            topo,
            next_hop_tbl,
            depth: depth.max(1),
        }
    }

    /// Network depth in hops (≥ 1).
    pub fn depth(&self) -> SimTime {
        self.depth
    }

    /// Next hop from `from` toward `dest` (`from != dest`). `None` when
    /// `dest` is unreachable from `from` (disconnected topology) — callers
    /// on the message path must treat that as a routed drop, not a panic.
    pub fn next_hop(&self, from: NodeId, dest: NodeId) -> Option<NodeId> {
        debug_assert_ne!(from, dest);
        if let (Some((fx, fy)), Some((dx, dy))) =
            (self.topo.grid_coords(from), self.topo.grid_coords(dest))
        {
            let (nx, ny) = if fx != dx {
                (if dx > fx { fx + 1 } else { fx - 1 }, fy)
            } else {
                (fx, if dy > fy { fy + 1 } else { fy - 1 })
            };
            return self.topo.node_at(nx, ny);
        }
        let tbl = self.next_hop_tbl.as_ref()?;
        match tbl[dest.index()][from.index()] {
            u32::MAX => None, // BFS never reached `from` from `dest`
            hop => Some(NodeId(hop)),
        }
    }
}

fn build_next_hop(topo: &Topology) -> Vec<Vec<u32>> {
    let n = topo.len();
    let mut out = vec![vec![u32::MAX; n]; n];
    for dest in topo.nodes() {
        let tbl = &mut out[dest.index()];
        let mut seen = vec![false; n];
        seen[dest.index()] = true;
        let mut q = std::collections::VecDeque::from([dest]);
        while let Some(v) = q.pop_front() {
            for &w in topo.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    tbl[w.index()] = v.0;
                    q.push_back(w);
                }
            }
        }
    }
    out
}

/// Max BFS hop distance from `root` to any reachable node.
fn bfs_eccentricity(topo: &Topology, root: NodeId) -> SimTime {
    let mut dist = vec![u64::MAX; topo.len()];
    dist[root.index()] = 0;
    let mut ecc = 0;
    let mut q = std::collections::VecDeque::from([root]);
    while let Some(v) = q.pop_front() {
        for &w in topo.neighbors(v) {
            if dist[w.index()] == u64::MAX {
                dist[w.index()] = dist[v.index()] + 1;
                ecc = ecc.max(dist[w.index()]);
                q.push_back(w);
            }
        }
    }
    ecc
}

/// Runtime timing/strategy configuration, shared by all nodes.
#[derive(Clone, Debug)]
pub struct RtConfig {
    pub strategy: Strategy,
    pub pass_mode: PassMode,
    /// Upper bound on storage-phase completion (τs, ms).
    pub tau_s: SimTime,
    /// Max clock skew (τc, ms) — must match the simulator's.
    pub tau_c: SimTime,
    /// Upper bound on join-phase completion (τj, ms) — used in retention.
    pub tau_j: SimTime,
    /// Spatial-constraint radius truncating regions (Fig. 7 experiments).
    pub spatial_radius: Option<f64>,
    /// Fault plane: heartbeat/lease liveness tracking, liveness-filtered
    /// ownership, and crash recovery. `None` (the default) disables all of
    /// it — no timers armed, no messages sent, the fault-free trace is
    /// byte-identical to a build without the plane.
    pub faults: Option<FaultPlaneCfg>,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            pass_mode: PassMode::OnePass,
            tau_s: 1_500,
            tau_c: 0,
            tau_j: 3_000,
            spatial_radius: None,
            faults: None,
        }
    }
}

/// Fault-plane parameters (heartbeats, leases, refresh, checkpointing).
#[derive(Clone, Debug)]
pub struct FaultPlaneCfg {
    /// 1-hop aliveness beacon period (ms).
    pub heartbeat_ms: SimTime,
    /// A neighbor silent for longer than this is declared dead and its
    /// death flooded (lease expiry, Theorem 3's failure-detection input).
    pub lease_ms: SimTime,
    /// Source-driven refresh period: live base facts are re-announced (with
    /// their original ids, so re-announcement is idempotent) and recent
    /// tombstones re-sent, healing state lost to crashes and partitions.
    pub refresh_ms: SimTime,
    /// Fold the durable journal tail into its checkpoint every N ops.
    pub checkpoint_every: usize,
    /// Stop re-arming periodic fault-plane timers once local time passes
    /// this bound, so a healed network can quiesce for oracle comparison.
    pub active_until: SimTime,
}

impl Default for FaultPlaneCfg {
    fn default() -> Self {
        FaultPlaneCfg {
            heartbeat_ms: 200,
            lease_ms: 700,
            refresh_ms: 2_000,
            checkpoint_every: 8,
            active_until: 60_000,
        }
    }
}

/// What this node currently believes about one peer's liveness. Merged
/// CRDT-style: higher `version` wins, on a tie dead beats alive, and a
/// larger `boot_ts` (a newer incarnation) is always news.
#[derive(Clone, Copy, Debug)]
struct LiveEntry {
    version: SimTime,
    alive: bool,
    boot_ts: SimTime,
}

impl Default for LiveEntry {
    fn default() -> Self {
        LiveEntry {
            version: 0,
            alive: true,
            boot_ts: 0,
        }
    }
}

/// Owner-side state of a derived tuple.
#[derive(Debug, Default)]
struct Owned {
    id: Option<TupleId>,
    counts: HashMap<DerivationKey, i64>,
    /// The liveness last propagated into the network.
    propagated_live: bool,
    holddown_armed: bool,
}

impl Owned {
    fn live(&self) -> bool {
        self.counts.values().any(|&c| c > 0)
    }
}

/// Is a single derivation still supported, given what we believe about the
/// liveness of its inputs' origin nodes? Free function (not a method) so
/// callers holding `&mut` borrows into `owned` can still consult it.
///
/// A derivation dies when any input's origin is believed dead, or when a
/// *derived* (IDB) input predates its origin's current incarnation — the
/// owner lost that entry in the crash, so the old id will never be
/// retracted through the normal delete path. Base-fact inputs are exempt
/// from the incarnation check: recovery re-announces them with their
/// original (pre-crash) ids.
fn key_live(
    liveness: &HashMap<NodeId, LiveEntry>,
    rule_body_preds: &HashMap<usize, Vec<Option<Symbol>>>,
    idb: &HashSet<Symbol>,
    key: &DerivationKey,
) -> bool {
    if key.rule_id == usize::MAX {
        return true; // static fact: no network inputs
    }
    key.inputs.iter().all(|(lit, id)| {
        let Some(e) = liveness.get(&id.node) else {
            return true; // never heard anything: presumed alive
        };
        if !e.alive {
            return false;
        }
        if e.boot_ts > id.ts {
            let is_idb = rule_body_preds
                .get(&key.rule_id)
                .and_then(|preds| preds.get(*lit as usize))
                .and_then(|p| *p)
                .is_some_and(|p| idb.contains(&p));
            if is_idb {
                return false;
            }
        }
        true
    })
}

/// Owner-side liveness of a derived tuple under the fault plane: at least
/// one positively counted derivation whose inputs all survive the current
/// liveness view. With the plane off this is exactly [`Owned::live`].
fn entry_live(
    liveness: &HashMap<NodeId, LiveEntry>,
    rule_body_preds: &HashMap<usize, Vec<Option<Symbol>>>,
    idb: &HashSet<Symbol>,
    faults_on: bool,
    entry: &Owned,
) -> bool {
    if !faults_on {
        return entry.live();
    }
    entry
        .counts
        .iter()
        .any(|(k, &c)| c > 0 && key_live(liveness, rule_body_preds, idb, k))
}

/// Per-node resource/activity counters (Sec. V memory accounting, Table 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    pub peak_replicas: usize,
    pub peak_derivations: usize,
    pub probes_processed: u64,
    pub results_emitted: u64,
    /// Messages dropped at this node because their destination was
    /// unreachable or their payload could not be applied (e.g. a
    /// `ToCenter` arriving at a non-center node). Kept separate from radio
    /// losses: these drops are routing/protocol-level.
    pub routing_drops: u64,
}

enum TimerAction {
    StartJoin(FactRecord),
    Holddown(Symbol, Tuple),
    /// Drop a replicated fragment whose retention elapsed (Sec. IV-B
    /// "Tuple Expiry": (τs + τc) + τj + (τw + τc) after generation).
    ExpireReplica(Symbol, Tuple),
    /// Silently expire an owned derived tuple (window-based, no join
    /// phase — "independently expiring a tuple after sufficient time").
    ExpireOwned(Symbol, Tuple),
    /// Fault plane: periodic 1-hop aliveness beacon.
    HeartbeatTick,
    /// Fault plane: periodic lease check — silent neighbors are declared
    /// dead and their death flooded.
    LeaseTick,
    /// Fault plane: periodic source-driven refresh + liveness anti-entropy.
    RefreshTick,
}

/// The sensorlog node application.
pub struct SensorlogNode {
    pub id: NodeId,
    prog: Arc<DistProgram>,
    cfg: Arc<RtConfig>,
    net: Arc<NetInfo>,
    shapes: Arc<Vec<RuleShape>>,
    /// Replicated stream fragments (with gen/del timestamps).
    frags: Database,
    frag_ids: HashMap<(Symbol, Tuple), TupleId>,
    /// Derived tuples this node owns under the geographic hash.
    owned: HashMap<(Symbol, Tuple), Owned>,
    /// Tuples this node generated (for delete-by-value at the source).
    my_facts: HashMap<(Symbol, Tuple), TupleId>,
    /// Flood dedup (NaiveBroadcast storage).
    flood_seen: HashSet<(TupleId, UpdateKind)>,
    timers: HashMap<u64, TimerAction>,
    next_tag: u64,
    seq: u32,
    /// Centroid baseline: the central server's engine (center node only).
    pub center_engine: Option<IncrementalEngine>,
    /// Provenance-plane bindings at a Centroid center: ground atom →
    /// tuple id (fed EDB facts keep their source id; derived heads get a
    /// center-minted id). Empty unless this node is the center and the
    /// provenance plane is enabled.
    center_ids: HashMap<(Symbol, Tuple), TupleId>,
    /// Drain position in the center engine's lineage log.
    center_lineage_cursor: usize,
    /// Sequence counter for center-minted provenance ids. Deliberately
    /// separate from `seq` (and offset into the top half of the range):
    /// provenance is a pure observer, so minting ids for the DAG must not
    /// advance — or collide with — the runtime's real tuple-id stream.
    center_seq: u32,
    pub stats: NodeStats,
    /// Peak stored items per predicate (fragment replicas + owned derived
    /// entries), cross-validated against the static memory bounds of
    /// `logic::diag` by `crate::invariants::check_static_bounds`.
    pub peak_pred_stored: BTreeMap<Symbol, usize>,
    /// Live owned-entry count per predicate (`owned` is keyed by
    /// (pred, tuple); this avoids a full scan on every delta).
    owned_per_pred: HashMap<Symbol, usize>,
    /// Output-predicate transitions observed at this owner.
    pub output_log: Vec<(Symbol, Tuple, UpdateKind, SimTime)>,
    /// Telemetry handle shared across the deployment (disabled by default;
    /// a pure observer — it never touches timers, messages, or the RNG).
    tele: Telemetry,
    /// Always-on per-hop result-lag histogram feeding the adaptive holddown
    /// default. Deliberately NOT behind the telemetry handle: its samples
    /// are pure simulated-time values (deterministic for a fixed seed), and
    /// the derived holddown affects the schedule — keeping it always-on
    /// preserves the "telemetry never perturbs the trace" invariant.
    hop_lag: Histogram,
    /// Provenance recording handle shared across the deployment (disabled
    /// by default; a pure observer like telemetry — recording never touches
    /// timers, messages, or the RNG, so the netsim journal is byte-identical
    /// with the plane on or off).
    prov: Provenance,
    /// Flash log for this node's own facts (fault plane only). Shared with
    /// the deployment harness so it survives the app being rebuilt on
    /// restart — that is the whole point of a durable store.
    durable: Option<Arc<Mutex<DurableStore>>>,
    /// What we believe about each peer (fault plane only; empty otherwise).
    liveness: HashMap<NodeId, LiveEntry>,
    /// Local time we last heard a heartbeat from each neighbor.
    last_hb: HashMap<NodeId, SimTime>,
    /// Local boot time of this incarnation (0 until `on_start`).
    boot_ts: SimTime,
    /// Derived (IDB) predicates: heads of some rule. A derived input minted
    /// before its owner's current incarnation booted is stale — the owner
    /// lost that entry in the crash.
    idb: HashSet<Symbol>,
    /// Rule id → body-literal predicates (`None` for non-relational
    /// literals), for the IDB-staleness filter.
    rule_body_preds: HashMap<usize, Vec<Option<Symbol>>>,
}

impl SensorlogNode {
    pub fn new(
        id: NodeId,
        prog: Arc<DistProgram>,
        cfg: Arc<RtConfig>,
        net: Arc<NetInfo>,
        shapes: Arc<Vec<RuleShape>>,
        tele: Telemetry,
    ) -> SensorlogNode {
        let center_engine =
            if cfg.strategy == Strategy::Centroid && Strategy::center(&net.topo) == id {
                let mut engine = IncrementalEngine::new(prog.analysis.clone(), prog.reg.clone())
                    .expect("centroid engine");
                engine.profiler = tele.profiler();
                Some(engine)
            } else {
                None
            };
        let mut idb = HashSet::new();
        let mut rule_body_preds: HashMap<usize, Vec<Option<Symbol>>> = HashMap::new();
        for rule in &prog.analysis.program.rules {
            idb.insert(rule.head.pred);
            let preds = rule
                .body
                .iter()
                .map(|lit| match lit {
                    sensorlog_logic::Literal::Pos(a) | sensorlog_logic::Literal::Neg(a) => {
                        Some(a.pred)
                    }
                    _ => None,
                })
                .collect();
            rule_body_preds.insert(rule.id, preds);
        }
        SensorlogNode {
            id,
            prog,
            cfg,
            net,
            shapes,
            frags: Database::new(),
            frag_ids: HashMap::new(),
            owned: HashMap::new(),
            my_facts: HashMap::new(),
            flood_seen: HashSet::new(),
            timers: HashMap::new(),
            next_tag: 0,
            seq: 0,
            center_engine,
            center_ids: HashMap::new(),
            center_lineage_cursor: 0,
            center_seq: 0x8000_0000,
            stats: NodeStats::default(),
            peak_pred_stored: BTreeMap::new(),
            owned_per_pred: HashMap::new(),
            output_log: Vec::new(),
            tele,
            hop_lag: Histogram::new(SIM_MS_BUCKETS),
            prov: Provenance::disabled(),
            durable: None,
            liveness: HashMap::new(),
            last_hb: HashMap::new(),
            boot_ts: 0,
            idb,
            rule_body_preds,
        }
    }

    /// Attach the node's durable store (fault plane). The harness keeps
    /// the other reference so the log outlives app restarts.
    pub fn with_durable(mut self, store: Arc<Mutex<DurableStore>>) -> SensorlogNode {
        self.durable = Some(store);
        self
    }

    /// Attach the deployment-wide provenance recording handle. On a
    /// Centroid center this also switches on the engine's per-firing
    /// lineage capture, which `feed_center` drains into `Deriv`/`Mint`
    /// records so centrally-derived tuples get proofs like GPA-derived
    /// ones do.
    pub fn with_provenance(mut self, prov: Provenance) -> SensorlogNode {
        if prov.is_enabled() {
            if let Some(engine) = self.center_engine.as_mut() {
                engine.set_record_lineage(true);
            }
        }
        self.prov = prov;
        self
    }

    /// Record the current stored-item count for `pred` into its peak.
    fn note_pred_stored(&mut self, pred: Symbol) {
        let cur = self.frags.len_of(pred) + self.owned_per_pred.get(&pred).copied().unwrap_or(0);
        let peak = self.peak_pred_stored.entry(pred).or_insert(0);
        *peak = (*peak).max(cur);
    }

    // ------------------------------------------------------------------
    // Public entry points (driven by the deployment harness)
    // ------------------------------------------------------------------

    /// A sensor reading was generated at this node: create the fact and
    /// run the update pipeline.
    pub fn generate(&mut self, ctx: &mut Ctx<Payload>, pred: Symbol, tuple: Tuple) {
        self.tele.bump(Scope::Pred(pred.as_str()), "generated");
        let id = self.fresh_id(ctx);
        self.my_facts.insert((pred, tuple.clone()), id);
        if let Some(d) = &self.durable {
            d.lock().unwrap().log_insert(pred, tuple.clone(), id);
        }
        let fact = FactRecord::insert(pred, tuple, id);
        self.prov.record_with(|| ProvRecord::Edb {
            node: self.id,
            pred: fact.pred,
            tuple: fact.tuple.clone(),
            id: fact.id,
            kind: fact.kind,
            tau: fact.tau,
        });
        self.initiate_update(ctx, fact);
    }

    /// A previously generated reading was retracted at this node.
    pub fn retract(&mut self, ctx: &mut Ctx<Payload>, pred: Symbol, tuple: Tuple) {
        let Some(&id) = self.my_facts.get(&(pred, tuple.clone())) else {
            return; // unknown tuple: nothing to delete
        };
        self.tele.bump(Scope::Pred(pred.as_str()), "retracted");
        self.my_facts.remove(&(pred, tuple.clone()));
        if let Some(d) = &self.durable {
            d.lock()
                .unwrap()
                .log_delete(pred, tuple.clone(), id, ctx.local_time);
        }
        let fact = FactRecord::delete(pred, tuple, id, ctx.local_time);
        self.prov.record_with(|| ProvRecord::Edb {
            node: self.id,
            pred: fact.pred,
            tuple: fact.tuple.clone(),
            id: fact.id,
            kind: fact.kind,
            tau: fact.tau,
        });
        self.initiate_update(ctx, fact);
    }

    /// Inject a derived fact directly at its owner (static facts from
    /// empty-body rules, t = 0).
    pub fn inject_static(&mut self, ctx: &mut Ctx<Payload>, pred: Symbol, tuple: Tuple) {
        let id = self.fresh_id(ctx);
        if !self.owned.contains_key(&(pred, tuple.clone())) {
            *self.owned_per_pred.entry(pred).or_insert(0) += 1;
        }
        let entry = self.owned.entry((pred, tuple.clone())).or_default();
        entry.id = Some(id);
        entry
            .counts
            .insert(DerivationKey::new(usize::MAX, Vec::new()), 1);
        entry.propagated_live = true;
        self.note_pred_stored(pred);
        self.log_output(pred, &tuple, UpdateKind::Insert, ctx.local_time);
        let fact = FactRecord::insert(pred, tuple, id);
        // Static facts are proof leaves like base EDB facts — recorded as
        // `Edb` at their owner.
        self.prov.record_with(|| ProvRecord::Edb {
            node: self.id,
            pred: fact.pred,
            tuple: fact.tuple.clone(),
            id: fact.id,
            kind: fact.kind,
            tau: fact.tau,
        });
        self.initiate_update(ctx, fact);
    }

    /// Liveness of one owned entry under the current fault-plane view.
    fn entry_is_live(&self, entry: &Owned) -> bool {
        entry_live(
            &self.liveness,
            &self.rule_body_preds,
            &self.idb,
            self.cfg.faults.is_some(),
            entry,
        )
    }

    /// Live result tuples of `pred` owned by this node.
    pub fn owned_live(&self, pred: Symbol) -> Vec<Tuple> {
        self.owned
            .iter()
            .filter(|((p, _), o)| *p == pred && self.entry_is_live(o))
            .map(|((_, t), _)| t.clone())
            .collect()
    }

    /// Current replica count (fragment tuples stored here).
    pub fn replica_count(&self) -> usize {
        self.frags.total_tuples()
    }

    /// Join-index activity on this node: fragment-store probes plus, on a
    /// Centroid center, the incremental engine's database.
    pub fn index_stats(&self) -> sensorlog_eval::IndexStatsSnapshot {
        let mut s = self.frags.index_stats();
        if let Some(engine) = &self.center_engine {
            s.merge(engine.db.index_stats());
        }
        s
    }

    // ------------------------------------------------------------------
    // Invariant-checker views (read-only; see `crate::invariants`)
    // ------------------------------------------------------------------

    /// Every per-derivation-key count with its owning (pred, tuple) —
    /// at quiescence all of these must be non-negative.
    pub fn derivation_count_entries(&self) -> Vec<(Symbol, Tuple, i64)> {
        let mut out: Vec<(Symbol, Tuple, i64)> = self
            .owned
            .iter()
            .flat_map(|((p, t), o)| o.counts.values().map(move |&c| (*p, t.clone(), c)))
            .collect();
        out.sort();
        out
    }

    /// Every `TupleId → (pred, tuple)` binding this node holds: facts it
    /// generated, fragment replicas, and owned derived tuples. A given id
    /// must denote the same fact wherever it appears in the network.
    pub fn id_bindings(&self) -> Vec<(TupleId, Symbol, Tuple)> {
        let mut out: Vec<(TupleId, Symbol, Tuple)> = Vec::new();
        out.extend(
            self.my_facts
                .iter()
                .map(|((p, t), &id)| (id, *p, t.clone())),
        );
        out.extend(
            self.frag_ids
                .iter()
                .map(|((p, t), &id)| (id, *p, t.clone())),
        );
        out.extend(
            self.owned
                .iter()
                .filter_map(|((p, t), o)| o.id.map(|id| (id, *p, t.clone()))),
        );
        out.sort();
        out
    }

    /// Owner entries that have not settled: a holddown still armed, or a
    /// liveness state differing from what was last propagated. Must be
    /// empty once the network quiesces.
    pub fn unsettled_owned(&self) -> Vec<(Symbol, Tuple)> {
        let mut out: Vec<(Symbol, Tuple)> = self
            .owned
            .iter()
            .filter(|(_, o)| o.holddown_armed || self.entry_is_live(o) != o.propagated_live)
            .map(|((p, t), _)| (*p, t.clone()))
            .collect();
        out.sort();
        out
    }

    /// Current stored derivation count.
    pub fn derivation_count(&self) -> usize {
        self.owned.values().map(|o| o.counts.len()).sum()
    }

    /// The facts this node generated and still holds, with their ids
    /// (sorted). A node restarted from its durable store must end a run
    /// byte-identical here to the same run without the crash.
    pub fn my_fact_records(&self) -> Vec<(Symbol, Tuple, TupleId)> {
        let mut out: Vec<(Symbol, Tuple, TupleId)> = self
            .my_facts
            .iter()
            .map(|(&(p, ref t), &id)| (p, t.clone(), id))
            .collect();
        out.sort();
        out
    }

    // ------------------------------------------------------------------
    // Update pipeline
    // ------------------------------------------------------------------

    fn fresh_id(&mut self, ctx: &Ctx<Payload>) -> TupleId {
        let id = TupleId {
            node: self.id,
            ts: ctx.local_time,
            seq: self.seq,
        };
        self.seq += 1;
        if let Some(d) = &self.durable {
            // Persist the high-water mark so a restarted incarnation never
            // re-mints an id this one used.
            d.lock().unwrap().note_seq(id.seq);
        }
        id
    }

    /// Start the storage phase for `fact` and schedule its join phase.
    fn initiate_update(&mut self, ctx: &mut Ctx<Payload>, fact: FactRecord) {
        let _span = self.tele.span("core.update.initiate");
        // A stream no rule consumes needs neither replication nor a probe:
        // derived results "will anyway be hashed appropriately for further
        // use of the join-query result" (Sec. III-A) — and sink predicates
        // have no further use beyond their owner.
        if !self.prog.occurrences.contains_key(&fact.pred)
            && self.cfg.strategy != Strategy::Centroid
        {
            return;
        }
        if self.cfg.strategy == Strategy::Centroid {
            let center = Strategy::center(&self.net.topo);
            if center == self.id {
                self.feed_center(ctx.local_time, &fact);
            } else {
                self.route(ctx, center, Payload::ToCenter { fact });
            }
            return;
        }

        // Storage phase.
        match self.cfg.strategy {
            Strategy::NaiveBroadcast => {
                self.store_replica(ctx, &fact);
                self.flood_seen.insert((fact.id, fact.kind));
                self.tele
                    .bump(Scope::Pred(fact.pred.as_str()), "flood_broadcasts");
                ctx.broadcast(Payload::FloodStore { fact: fact.clone() });
            }
            _ => {
                let region = self
                    .cfg
                    .strategy
                    .storage_region(&self.net.topo, self.id, self.cfg.spatial_radius)
                    .expect("non-centroid strategy has regions");
                self.store_replica(ctx, &fact);
                let my_pos = region.iter().position(|&n| n == self.id);
                let walk: Vec<NodeId> = match my_pos {
                    Some(i) => {
                        // Walk right then wrap to the left part: two walks.
                        let right: Vec<NodeId> = region[i + 1..].to_vec();
                        let left: Vec<NodeId> = region[..i].iter().rev().copied().collect();
                        if !right.is_empty() {
                            self.send_store_walk(ctx, &fact, right);
                        }
                        left
                    }
                    None => region,
                };
                if !walk.is_empty() {
                    self.send_store_walk(ctx, &fact, walk);
                }
            }
        }

        // Join phase after τs + τc (Sec. IV-A).
        let delay = self.cfg.tau_s + self.cfg.tau_c;
        let tag = self.arm_timer(TimerAction::StartJoin(fact));
        ctx.set_timer(delay, tag);
    }

    fn send_store_walk(&mut self, ctx: &mut Ctx<Payload>, fact: &FactRecord, walk: Vec<NodeId>) {
        let first = walk[0];
        let msg = Payload::StoreWalk {
            fact: fact.clone(),
            walk: Arc::new(walk),
            pos: 0,
        };
        self.route(ctx, first, msg);
    }

    fn store_replica(&mut self, ctx: &mut Ctx<Payload>, fact: &FactRecord) {
        // Generation-aware replica storage: insert and delete walks may
        // arrive in either order (independent multi-hop routes), so the
        // replica tracks the newest tuple *generation* (by ID, Definition 2)
        // and a tombstone never gets clobbered by its own generation's
        // late-arriving insert.
        self.tele
            .bump(Scope::Pred(fact.pred.as_str()), "replicas_stored");
        let key = (fact.pred, fact.tuple.clone());
        let stored = self.frag_ids.get(&key).copied();
        match fact.kind {
            UpdateKind::Insert => match stored {
                // Same generation already here (possibly tombstoned by an
                // overtaking delete), or a newer one: nothing to do.
                Some(old) if old >= fact.id => {}
                _ => {
                    let rel = self.frags.relation_mut(fact.pred);
                    rel.remove(&fact.tuple); // reset meta of any older gen
                    rel.insert(fact.tuple.clone(), TupleMeta::at(fact.tau));
                    self.frag_ids.insert(key, fact.id);
                }
            },
            UpdateKind::Delete => match stored {
                // Tombstone the matching generation (Sec. IV-B: replicas
                // stay for concurrent probes and expire later).
                Some(old) if old == fact.id => {
                    self.frags
                        .relation_mut(fact.pred)
                        .mark_deleted(&fact.tuple, fact.tau);
                }
                // A newer generation is stored: this delete is stale.
                Some(old) if old > fact.id => {}
                // Delete overtook (or outlived) the insert walk: store a
                // tombstoned replica so probes between gen and del still
                // see it, and later probes don't.
                _ => {
                    let rel = self.frags.relation_mut(fact.pred);
                    rel.remove(&fact.tuple);
                    rel.insert(
                        fact.tuple.clone(),
                        TupleMeta {
                            gen_ts: fact.id.ts,
                            del_ts: Some(fact.tau),
                        },
                    );
                    self.frag_ids.insert(key, fact.id);
                }
            },
        }
        self.stats.peak_replicas = self.stats.peak_replicas.max(self.frags.total_tuples());
        self.note_pred_stored(fact.pred);
        // Retention timer for windowed streams (Sec. IV-B): the replica
        // must outlive every probe that may legally join with it —
        // (τs + τc) + τj + (τw + τc) past its generation timestamp.
        if fact.kind == UpdateKind::Insert {
            if let Some(&w) = self.prog.windows.get(&fact.pred) {
                let retention =
                    (self.cfg.tau_s + self.cfg.tau_c) + self.cfg.tau_j + (w + self.cfg.tau_c);
                let expire_at = fact.tau.saturating_add(retention);
                let delay = expire_at.saturating_sub(ctx.local_time).max(1);
                let tag = self.arm_timer(TimerAction::ExpireReplica(fact.pred, fact.tuple.clone()));
                ctx.set_timer(delay, tag);
            }
        }
    }

    /// Build and launch the join probe for `fact`.
    fn start_join(&mut self, ctx: &mut Ctx<Payload>, fact: FactRecord) {
        let _span = self.tele.span("core.join.start");
        let occs = match self.prog.occurrences.get(&fact.pred) {
            Some(o) => o.clone(),
            None => return, // pred not consumed by any rule
        };
        let mut work = Vec::new();
        let mut max_passes: u8 = 1;
        for occ in &occs {
            let rule = &self.prog.analysis.program.rules[occ.rule_idx];
            if let Some(p) = seed_partial(
                &self.prog,
                rule,
                occ.lit_idx,
                occ.negated,
                &fact.tuple,
                fact.id,
            ) {
                if self.cfg.pass_mode == PassMode::MultiPass {
                    let shape = &self.shapes[occ.rule_idx];
                    let remaining = shape
                        .positives
                        .iter()
                        .filter(|&&i| i != occ.lit_idx)
                        .count() as u8;
                    max_passes = max_passes.max(remaining.max(1));
                }
                work.push(RuleWork {
                    rule_idx: occ.rule_idx as u16,
                    occ: occ.lit_idx as u16,
                    negated: occ.negated,
                    partials: vec![p],
                });
            }
        }
        if work.is_empty() {
            return;
        }
        let region = self
            .cfg
            .strategy
            .join_region(&self.net.topo, self.id, self.cfg.spatial_radius)
            .expect("non-centroid strategy has regions");
        let probe = ProbeMsg {
            update: fact,
            walk: Arc::new(region),
            pos: 0,
            pass: 0,
            total_passes: max_passes,
            work,
        };
        self.deliver_probe(ctx, probe);
    }

    /// Route the probe to its current walk target (possibly ourselves).
    fn deliver_probe(&mut self, ctx: &mut Ctx<Payload>, probe: ProbeMsg) {
        let target = probe.walk[probe.pos];
        if target == self.id {
            self.process_probe(ctx, probe);
        } else {
            self.route(ctx, target, Payload::Probe(probe));
        }
    }

    /// Run the join-computation step at this node (Fig. 1) and forward.
    fn process_probe(&mut self, ctx: &mut Ctx<Payload>, mut probe: ProbeMsg) {
        let _span = self.tele.span("core.join.probe");
        self.stats.probes_processed += 1;
        let tau = probe.update.tau;
        let sign_base = probe.update.kind;
        // Sim-time age of the update at the moment its probe reaches us —
        // the in-network join latency the paper bounds with τs + τc.
        self.tele
            .record_sim("core.join.probe", ctx.local_time.saturating_sub(tau));
        self.tele
            .bump(Scope::Pred(probe.update.pred.as_str()), "probes_processed");

        let mut emissions: Vec<(Symbol, Tuple, DerivationKey, i8)> = Vec::new();
        {
            let frag_ids = &self.frag_ids;
            let id_of = move |p: Symbol, t: &Tuple| frag_ids.get(&(p, t.clone())).copied();
            let lctx = LocalCtx {
                prog: self.prog.as_ref(),
                db: &self.frags,
                id_of: &id_of,
                tau,
                update_id: probe.update.id,
                // Fault-plane delete probes match generously so re-driven
                // tombstones retract derivations made from stale replicas
                // (see `LocalCtx::generous`). Inert when faults are off.
                generous: self.cfg.faults.is_some() && sign_base == UpdateKind::Delete,
            };
            let last_node = probe.pos + 1 == probe.walk.len();
            let last_pass = probe.pass + 1 >= probe.total_passes;
            let end_of_walk = last_node && last_pass;

            for workitem in &mut probe.work {
                let rule = &self.prog.analysis.program.rules[workitem.rule_idx as usize];
                let shape = &self.shapes[workitem.rule_idx as usize];
                let pinned = Some(workitem.occ as usize);
                // Multiple-pass restriction: pass k extends only the k-th
                // unbound positive literal (ascending, skipping the pin).
                let restrict = if probe.total_passes > 1 {
                    // Rules with fewer remaining streams than total passes
                    // are done extending: restrict to an impossible index.
                    Some(
                        shape
                            .positives
                            .iter()
                            .filter(|&&i| i != workitem.occ as usize)
                            .nth(probe.pass as usize)
                            .copied()
                            .unwrap_or(usize::MAX),
                    )
                } else {
                    None
                };
                let incoming = std::mem::take(&mut workitem.partials);
                let processed = process_partials(&lctx, rule, shape, incoming, pinned, restrict);
                let needs_full_walk = shape.has_negation_other_than(pinned);
                let sign = match (sign_base, workitem.negated) {
                    (UpdateKind::Insert, false) | (UpdateKind::Delete, true) => 1i8,
                    _ => -1i8,
                };
                let mut keep: Vec<Partial> = Vec::new();
                for p in processed {
                    if p.is_complete(shape) {
                        if needs_full_walk && !end_of_walk {
                            keep.push(p); // keep checking negations
                        } else {
                            let key = DerivationKey::new(rule.id, p.inputs.clone());
                            let head = instantiate(&self.prog, rule, &p);
                            match head {
                                Some(tuple) => emissions.push((rule.head.pred, tuple, key, sign)),
                                None => { /* head eval failed: drop */ }
                            }
                        }
                    } else if !end_of_walk {
                        keep.push(p);
                    }
                }
                workitem.partials = keep;
            }
        }

        let origin = probe.update.id;
        for (pred, tuple, key, sign) in emissions {
            self.stats.results_emitted += 1;
            self.tele
                .bump(Scope::Pred(pred.as_str()), "results_emitted");
            self.emit_deriv_delta(ctx, pred, tuple, key, sign, tau, origin);
        }

        // Forward.
        if probe.pos + 1 < probe.walk.len() {
            probe.pos += 1;
            self.deliver_probe(ctx, probe);
        } else if probe.pass + 1 < probe.total_passes {
            // Multiple-pass: U-turn.
            let mut walk = probe.walk.as_ref().clone();
            walk.reverse();
            probe.walk = Arc::new(walk);
            probe.pos = 0;
            probe.pass += 1;
            // Already at the first node of the reversed walk (ourselves).
            self.process_probe(ctx, probe);
        }
        // else: traversal done; undischarged partials discarded
        // ("the partial results generated at the last node are discarded").
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_deriv_delta(
        &mut self,
        ctx: &mut Ctx<Payload>,
        pred: Symbol,
        tuple: Tuple,
        key: DerivationKey,
        sign: i8,
        tau: SimTime,
        origin: TupleId,
    ) {
        let owner = ght::owner_of(&self.net.topo, pred, &tuple);
        if owner == self.id {
            self.handle_deriv_delta(ctx, pred, tuple, key, sign, tau, origin);
        } else {
            let payload = Payload::DerivDelta {
                pred,
                tuple,
                key,
                sign,
                tau,
                origin,
            };
            self.route(ctx, owner, payload);
        }
    }

    /// Owner-side derivation bookkeeping + holddown arming.
    #[allow(clippy::too_many_arguments)]
    fn handle_deriv_delta(
        &mut self,
        ctx: &mut Ctx<Payload>,
        pred: Symbol,
        tuple: Tuple,
        key: DerivationKey,
        sign: i8,
        tau: SimTime,
        origin: TupleId,
    ) {
        let _span = self.tele.span("core.result.apply");
        self.tele.bump(Scope::Pred(pred.as_str()), "deriv_deltas");
        self.prov.record_with(|| ProvRecord::Deriv {
            owner: self.id,
            pred,
            tuple: tuple.clone(),
            key: key.clone(),
            sign,
            tau,
            origin,
            at: ctx.local_time,
        });
        // Sim-time lag between the originating update and its derivation
        // delta landing at the owner (storage + join + result routing).
        let lag = ctx.local_time.saturating_sub(tau);
        self.tele.record_sim("core.result.apply", lag);
        // Per-hop estimate: the end-to-end lag spread over the network
        // depth. Feeds the adaptive holddown default for predicates with
        // no declared `.holddown`.
        self.hop_lag.observe(lag / self.net.depth());
        if !self.owned.contains_key(&(pred, tuple.clone())) {
            *self.owned_per_pred.entry(pred).or_insert(0) += 1;
        }
        let needs_holddown = {
            let faults_on = self.cfg.faults.is_some();
            let entry = self.owned.entry((pred, tuple.clone())).or_default();
            // Counts are clamped to [-1, 1] per derivation key: a source-
            // driven refresh re-announces live facts with their original
            // ids, so the same derivation (same key — keys embed input ids)
            // can legitimately arrive more than once, and repeated
            // tombstone replays can over-deliver the matching delete. The
            // clamp makes both idempotent while still letting a delete
            // overtake its insert (transient -1) and letting the structural
            // checker catch genuine underflow on fault-free runs.
            let c = entry.counts.entry(key).or_insert(0);
            *c = if sign > 0 {
                (*c + 1).min(1)
            } else {
                (*c - 1).max(-1)
            };
            entry.counts.retain(|_, &mut c| c != 0);
            let live = entry_live(
                &self.liveness,
                &self.rule_body_preds,
                &self.idb,
                faults_on,
                entry,
            );
            let needed = !entry.holddown_armed && live != entry.propagated_live;
            if needed {
                entry.holddown_armed = true;
            }
            needed
        };
        // Windowed derived streams: owned state expires with the window
        // (silent, Sec. II-B). Re-armed on each delta so the entry outlives
        // its last activity by one window.
        if let Some(&w) = self.prog.windows.get(&pred).copied().as_ref() {
            let tag = self.arm_timer(TimerAction::ExpireOwned(pred, tuple.clone()));
            ctx.set_timer(w + self.cfg.tau_c + 1, tag);
        }
        if needs_holddown {
            let holddown = self
                .prog
                .holddown
                .get(&pred)
                .copied()
                .unwrap_or_else(|| self.default_holddown());
            let tag = self.arm_timer(TimerAction::Holddown(pred, tuple));
            ctx.set_timer(holddown, tag);
        }
        let total: usize = self.owned.values().map(|o| o.counts.len()).sum();
        self.stats.peak_derivations = self.stats.peak_derivations.max(total);
        self.note_pred_stored(pred);
    }

    /// Holddown for predicates with no declared `.holddown`: p95 observed
    /// per-hop result lag Ã network depth (the ROADMAP adaptive-holddown
    /// item, minimal version) â long enough for a canceling delta to cross
    /// the network, short enough to track the deployment's real latency
    /// instead of a hard-coded constant. Clamped to `[10, Ïj]`; 100 until
    /// the first observation. Declared `.holddown` values stay
    /// authoritative (checked before this is consulted).
    fn default_holddown(&self) -> SimTime {
        // Under the fault plane the holddown upper clamp tightens to τj/4:
        // chaos churn inflates the observed lag tail, and a holddown that
        // stretches toward τj would hold retractions hostage for the whole
        // join bound after every crash.
        let cap = if self.cfg.faults.is_some() {
            (self.cfg.tau_j / 4).max(10)
        } else {
            self.cfg.tau_j.max(10)
        };
        match self.hop_lag.quantile_upper(0.95) {
            Some(per_hop) => per_hop.saturating_mul(self.net.depth()).clamp(10, cap),
            None => 100.min(cap),
        }
    }

    /// Holddown expired: propagate the tuple's liveness if it still differs
    /// from what the network believes (Sec. IV-C's "wait … before actually
    /// finalizing a derived fact").
    fn fire_holddown(&mut self, ctx: &mut Ctx<Payload>, pred: Symbol, tuple: Tuple) {
        let now = ctx.local_time;
        let faults_on = self.cfg.faults.is_some();
        let Some(entry) = self.owned.get_mut(&(pred, tuple.clone())) else {
            return;
        };
        entry.holddown_armed = false;
        let live = entry_live(
            &self.liveness,
            &self.rule_body_preds,
            &self.idb,
            faults_on,
            entry,
        );
        if live == entry.propagated_live {
            return; // transition debounced away
        }
        entry.propagated_live = live;
        self.tele.bump(Scope::Pred(pred.as_str()), "holddown_fired");
        let fact = if live {
            let id = TupleId {
                node: self.id,
                ts: now,
                seq: self.seq,
            };
            self.seq += 1;
            if let Some(d) = &self.durable {
                d.lock().unwrap().note_seq(id.seq);
            }
            entry.id = Some(id);
            FactRecord::insert(pred, tuple.clone(), id)
        } else {
            let Some(id) = entry.id else {
                // Died before its insert was ever propagated (the holddown
                // debounced the whole lifetime away at arming time but the
                // flag raced): nothing in the network to retract.
                self.stats.routing_drops += 1;
                return;
            };
            FactRecord::delete(pred, tuple.clone(), id, now)
        };
        self.prov.record_with(|| ProvRecord::Mint {
            owner: self.id,
            pred,
            tuple: fact.tuple.clone(),
            id: fact.id,
            kind: fact.kind,
            at: now,
        });
        self.log_output(pred, &tuple, fact.kind, now);
        self.initiate_update(ctx, fact);
    }

    fn log_output(&mut self, pred: Symbol, tuple: &Tuple, kind: UpdateKind, ts: SimTime) {
        if self.prog.outputs.contains(&pred) {
            self.output_log.push((pred, tuple.clone(), kind, ts));
        }
    }

    fn feed_center(&mut self, now: SimTime, fact: &FactRecord) {
        let Some(engine) = self.center_engine.as_mut() else {
            // A ToCenter payload landed at a non-center node (misrouted
            // under churn): drop it rather than crash the node.
            self.stats.routing_drops += 1;
            return;
        };
        let upd = Update {
            pred: fact.pred,
            tuple: fact.tuple.clone(),
            kind: fact.kind,
            ts: fact.tau,
        };
        let _ = engine.apply(upd);
        if self.prov.is_enabled() {
            // The fed fact keeps its source-minted id (the source already
            // emitted the `Edb` record); deletes reuse the generation id,
            // so only inserts refresh the binding.
            if fact.kind == UpdateKind::Insert {
                self.center_ids
                    .insert((fact.pred, fact.tuple.clone()), fact.id);
            }
            self.drain_center_lineage(now, fact.id);
        }
    }

    /// Translate the center engine's per-firing lineage records (appended
    /// since the last drain) into the cross-node provenance dialect: each
    /// firing becomes a `Deriv` whose key maps premise atoms to their
    /// bound tuple ids, and a newly-live head gets a center-minted `Mint`.
    /// Cascade order guarantees a derived premise's own `+1` record (and
    /// hence its mint) precedes any firing that consumes it.
    fn drain_center_lineage(&mut self, now: SimTime, trigger: TupleId) {
        use sensorlog_eval::EDB_RULE;
        // (rule_id, sign, head atom, premise atoms, tau) per fresh firing.
        type Firing = (usize, i8, (Symbol, Tuple), Vec<(Symbol, Tuple)>, u64);
        let Some(log) = self.center_engine.as_ref().and_then(|e| e.lineage()) else {
            return;
        };
        let fresh: Vec<Firing> = log.records[self.center_lineage_cursor..]
            .iter()
            .filter(|r| r.rule_id != EDB_RULE)
            .map(|r| {
                let head = log.resolve(r.head).expect("interned head").clone();
                let prems = r
                    .premises
                    .iter()
                    .map(|&a| log.resolve(a).expect("interned premise").clone())
                    .collect();
                (r.rule_id, r.sign, head, prems, r.tau)
            })
            .collect();
        self.center_lineage_cursor = log.len();
        for (rule_id, sign, (pred, tuple), prems, tau) in fresh {
            let inputs: Option<Vec<(u16, TupleId)>> = prems
                .iter()
                .enumerate()
                .map(|(i, atom)| self.center_ids.get(atom).map(|&id| (i as u16, id)))
                .collect();
            let Some(inputs) = inputs else {
                // A premise with no binding means its own lineage was lost
                // (engine predates the plane being enabled): skip rather
                // than fabricate an unprovable key.
                continue;
            };
            self.prov.record_with(|| ProvRecord::Deriv {
                owner: self.id,
                pred,
                tuple: tuple.clone(),
                key: DerivationKey::new(rule_id, inputs.clone()),
                sign,
                tau,
                origin: trigger,
                at: now,
            });
            if sign > 0 && !self.center_ids.contains_key(&(pred, tuple.clone())) {
                let id = TupleId {
                    node: self.id,
                    ts: now,
                    seq: self.center_seq,
                };
                self.center_seq += 1;
                self.center_ids.insert((pred, tuple.clone()), id);
                self.prov.record_with(|| ProvRecord::Mint {
                    owner: self.id,
                    pred,
                    tuple: tuple.clone(),
                    id,
                    kind: UpdateKind::Insert,
                    at: now,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault plane: liveness tracking, leases, refresh, recovery
    // ------------------------------------------------------------------

    fn believes_dead(&self, n: NodeId) -> bool {
        self.liveness.get(&n).is_some_and(|e| !e.alive)
    }

    /// Boot-time fault-plane setup, shared by first start and restart:
    /// stamp the incarnation, baseline neighbor leases, announce ourselves,
    /// and arm the periodic timers. No-op with the plane disabled.
    fn boot_tick(&mut self, ctx: &mut Ctx<Payload>) {
        let Some(f) = self.cfg.faults.clone() else {
            return;
        };
        self.boot_ts = ctx.local_time;
        let nbrs: Vec<NodeId> = ctx.neighbors().to_vec();
        for nb in nbrs {
            // Grace period: a neighbor gets a full lease from our boot
            // before we may declare it dead.
            self.last_hb.insert(nb, ctx.local_time);
        }
        self.liveness.insert(
            self.id,
            LiveEntry {
                version: ctx.local_time,
                alive: true,
                boot_ts: self.boot_ts,
            },
        );
        ctx.broadcast(Payload::Heartbeat {
            version: ctx.local_time,
            boot_ts: self.boot_ts,
        });
        if ctx.local_time < f.active_until {
            let tag = self.arm_timer(TimerAction::HeartbeatTick);
            ctx.set_timer(f.heartbeat_ms, tag);
            let tag = self.arm_timer(TimerAction::LeaseTick);
            ctx.set_timer(f.lease_ms, tag);
            let tag = self.arm_timer(TimerAction::RefreshTick);
            ctx.set_timer(f.refresh_ms, tag);
        }
    }

    fn handle_heartbeat(
        &mut self,
        ctx: &mut Ctx<Payload>,
        from: NodeId,
        version: SimTime,
        boot_ts: SimTime,
    ) {
        if self.cfg.faults.is_none() {
            return;
        }
        self.last_hb.insert(from, ctx.local_time);
        self.apply_liveness(ctx, from, version, true, boot_ts);
    }

    /// Merge one liveness observation; flood it onward and rescan owned
    /// entries iff it changed something a peer could not already know
    /// (the alive flag or the incarnation — version-only advances stay
    /// local, else every heartbeat would flood the network).
    fn apply_liveness(
        &mut self,
        ctx: &mut Ctx<Payload>,
        subject: NodeId,
        version: SimTime,
        alive: bool,
        boot_ts: SimTime,
    ) {
        if self.cfg.faults.is_none() {
            return;
        }
        if subject == self.id {
            if !alive {
                // Rumors of our death: out-version them.
                let v = ctx.local_time.max(version + 1);
                self.liveness.insert(
                    self.id,
                    LiveEntry {
                        version: v,
                        alive: true,
                        boot_ts: self.boot_ts,
                    },
                );
                self.tele
                    .bump(Scope::Layer("core.faults"), "death_rebuttals");
                ctx.broadcast(Payload::Liveness {
                    subject: self.id,
                    version: v,
                    alive: true,
                    boot_ts: self.boot_ts,
                });
            }
            return;
        }
        let e = self.liveness.entry(subject).or_default();
        let supersedes = version > e.version || (version == e.version && e.alive && !alive);
        let boot_news = boot_ts > e.boot_ts;
        if !supersedes && !boot_news {
            return;
        }
        let flag_changed = (supersedes && e.alive != alive) || boot_news;
        if supersedes {
            e.version = version;
            e.alive = alive;
        }
        if boot_news {
            e.boot_ts = boot_ts;
        }
        if flag_changed {
            let (version, alive, boot_ts) = (e.version, e.alive, e.boot_ts);
            ctx.broadcast(Payload::Liveness {
                subject,
                version,
                alive,
                boot_ts,
            });
            self.rescan_owned(ctx);
        }
    }

    /// Liveness changed: arm holddowns for owned entries whose filtered
    /// liveness no longer matches what the network believes. This is the
    /// retraction path of Theorem 3 driven by failure detection instead of
    /// an explicit delete.
    fn rescan_owned(&mut self, ctx: &mut Ctx<Payload>) {
        let mut arm: Vec<(Symbol, Tuple)> = self
            .owned
            .iter()
            .filter(|(_, o)| !o.holddown_armed && self.entry_is_live(o) != o.propagated_live)
            .map(|((p, t), _)| (*p, t.clone()))
            .collect();
        arm.sort();
        for (pred, tuple) in arm {
            if let Some(o) = self.owned.get_mut(&(pred, tuple.clone())) {
                o.holddown_armed = true;
            }
            let holddown = self
                .prog
                .holddown
                .get(&pred)
                .copied()
                .unwrap_or_else(|| self.default_holddown());
            let tag = self.arm_timer(TimerAction::Holddown(pred, tuple));
            ctx.set_timer(holddown, tag);
        }
    }

    /// Lease check: any neighbor we believe alive but have not heard from
    /// for two lease periods is declared dead and the death flooded.
    fn lease_tick(&mut self, ctx: &mut Ctx<Payload>) {
        let Some(f) = self.cfg.faults.clone() else {
            return;
        };
        let now = ctx.local_time;
        let nbrs: Vec<NodeId> = ctx.neighbors().to_vec();
        let suspects: Vec<(NodeId, SimTime)> = nbrs
            .into_iter()
            .filter(|nb| {
                let heard = self.last_hb.get(nb).copied().unwrap_or(0);
                let believed_alive = self.liveness.get(nb).is_none_or(|e| e.alive);
                believed_alive && now.saturating_sub(heard) > f.lease_ms
            })
            .map(|nb| {
                let boot = self.liveness.get(&nb).map(|e| e.boot_ts).unwrap_or(0);
                (nb, boot)
            })
            .collect();
        for (nb, boot) in suspects {
            self.tele.bump(Scope::Layer("core.faults"), "suspicions");
            self.apply_liveness(ctx, nb, now, false, boot);
        }
        if now < f.active_until {
            let tag = self.arm_timer(TimerAction::LeaseTick);
            ctx.set_timer(f.lease_ms, tag);
        }
    }

    /// Source-driven refresh: re-announce our live base facts (original
    /// ids — idempotent at replicas and owners thanks to generation dedup
    /// and clamped counts), re-send recent tombstones whose walks a crash
    /// or partition may have cut short, and exchange a 1-hop liveness
    /// digest so healed partitions relearn deaths and reboots they missed.
    fn refresh_tick(&mut self, ctx: &mut Ctx<Payload>) {
        let Some(f) = self.cfg.faults.clone() else {
            return;
        };
        self.tele
            .bump(Scope::Layer("core.faults"), "refresh_rounds");
        let mut entries: Vec<(NodeId, SimTime, bool, SimTime)> = self
            .liveness
            .iter()
            .filter(|&(&n, e)| n != self.id && (!e.alive || e.boot_ts > 0))
            .map(|(&n, e)| (n, e.version, e.alive, e.boot_ts))
            .collect();
        entries.sort();
        if !entries.is_empty() {
            ctx.broadcast(Payload::LivenessDigest { entries });
        }
        let mut facts: Vec<(Symbol, Tuple, TupleId)> = self
            .my_facts
            .iter()
            .map(|(&(p, ref t), &id)| (p, t.clone(), id))
            .collect();
        facts.sort();
        for (pred, tuple, id) in facts {
            // Replays keep the original id (idempotence at replicas and
            // owners) but probe at *current* time: an original-tau replay
            // would re-derive historical joins with partners deleted since
            // (their tombstones legitimately satisfy `del_ts ≥ tau` for the
            // old tau), resurrecting retracted results every round.
            let mut rec = FactRecord::insert(pred, tuple, id);
            rec.tau = ctx.local_time;
            self.initiate_update(ctx, rec);
        }
        let deletes: Vec<FactRecord> = match &self.durable {
            Some(d) => d.lock().unwrap().recent_deletes().to_vec(),
            None => Vec::new(),
        };
        for del in deletes {
            self.initiate_update(ctx, del);
        }
        if ctx.local_time < f.active_until {
            let tag = self.arm_timer(TimerAction::RefreshTick);
            ctx.set_timer(f.refresh_ms, tag);
        }
    }

    fn heartbeat_tick(&mut self, ctx: &mut Ctx<Payload>) {
        let Some(f) = self.cfg.faults.clone() else {
            return;
        };
        // Keep our own version current so death rumors can be compared.
        self.liveness.insert(
            self.id,
            LiveEntry {
                version: ctx.local_time,
                alive: true,
                boot_ts: self.boot_ts,
            },
        );
        ctx.broadcast(Payload::Heartbeat {
            version: ctx.local_time,
            boot_ts: self.boot_ts,
        });
        if ctx.local_time < f.active_until {
            let tag = self.arm_timer(TimerAction::HeartbeatTick);
            ctx.set_timer(f.heartbeat_ms, tag);
        }
    }

    fn arm_timer(&mut self, action: TimerAction) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.timers.insert(tag, action);
        tag
    }

    fn route(&mut self, ctx: &mut Ctx<Payload>, dest: NodeId, payload: Payload) {
        debug_assert_ne!(dest, self.id);
        if self.tele.is_enabled() {
            // Per-predicate traffic accounting, one bump per hop (the same
            // currency as the simulator's per-kind tx counters).
            self.tele.bump(
                Scope::Pred(payload.pred().as_str()),
                sent_counter(payload.kind()),
            );
        }
        let Some(mut hop) = self.net.next_hop(self.id, dest) else {
            // Unreachable destination (partitioned topology): a logged
            // drop, indistinguishable from loss to the protocol above.
            self.stats.routing_drops += 1;
            self.tele
                .bump(Scope::Pred(payload.pred().as_str()), "routing_drops");
            return;
        };
        // Route repair (fault plane): detour around a next hop we believe
        // dead, as long as some live neighbor is strictly closer to the
        // destination (no loops). Falls back to the primary hop — the drop
        // is then recovered by refresh once liveness heals.
        if hop != dest && self.cfg.faults.is_some() && self.believes_dead(hop) {
            if let Some(detour) =
                sensorlog_netstack::router::next_hop_avoiding(&self.net.topo, self.id, dest, &|n| {
                    self.believes_dead(n)
                })
            {
                self.tele.bump(Scope::Layer("core.faults"), "route_detours");
                hop = detour;
            }
        }
        if self.prov.is_enabled() {
            if let Some(origin) = payload.origin_id() {
                let (kind, at) = (payload.kind(), ctx.local_time);
                self.prov.record_with(|| ProvRecord::Hop {
                    from: self.id,
                    to: hop,
                    dest,
                    kind,
                    origin,
                    at,
                });
            }
        }
        if hop == dest {
            ctx.send(dest, payload);
        } else {
            ctx.send(
                hop,
                Payload::Routed {
                    dest,
                    inner: Box::new(payload),
                },
            );
        }
    }

    fn handle_payload(&mut self, ctx: &mut Ctx<Payload>, payload: Payload) {
        match payload {
            Payload::Routed { dest, inner } => {
                if dest == self.id {
                    self.handle_payload(ctx, *inner);
                } else {
                    self.route(ctx, dest, *inner);
                }
            }
            Payload::StoreWalk { fact, walk, pos } => {
                self.store_replica(ctx, &fact);
                if pos + 1 < walk.len() {
                    let next = walk[pos + 1];
                    self.route(
                        ctx,
                        next,
                        Payload::StoreWalk {
                            fact,
                            walk,
                            pos: pos + 1,
                        },
                    );
                }
            }
            Payload::FloodStore { fact } => {
                if self.flood_seen.insert((fact.id, fact.kind)) {
                    self.store_replica(ctx, &fact);
                    self.tele
                        .bump(Scope::Pred(fact.pred.as_str()), "flood_broadcasts");
                    ctx.broadcast(Payload::FloodStore { fact });
                }
            }
            Payload::Probe(probe) => {
                if probe.walk[probe.pos] == self.id {
                    self.process_probe(ctx, probe);
                } else {
                    // Mid-route to its walk target.
                    self.deliver_probe(ctx, probe);
                }
            }
            Payload::DerivDelta {
                pred,
                tuple,
                key,
                sign,
                tau,
                origin,
            } => self.handle_deriv_delta(ctx, pred, tuple, key, sign, tau, origin),
            Payload::ToCenter { fact } => self.feed_center(ctx.local_time, &fact),
            // 1-hop heartbeats carry their sender in the radio header and
            // are intercepted in `on_message`; one arriving here (inside a
            // Routed envelope) is a protocol violation we simply drop.
            Payload::Heartbeat { .. } => self.stats.routing_drops += 1,
            Payload::Liveness {
                subject,
                version,
                alive,
                boot_ts,
            } => self.apply_liveness(ctx, subject, version, alive, boot_ts),
            Payload::LivenessDigest { entries } => {
                for (subject, version, alive, boot_ts) in entries {
                    self.apply_liveness(ctx, subject, version, alive, boot_ts);
                }
            }
        }
    }
}

/// Telemetry counter name for a routed payload of the given message kind
/// (`&'static` so counter keys never allocate on the hot path).
fn sent_counter(kind: &'static str) -> &'static str {
    match kind {
        "store" => "sent_store",
        "probe" => "sent_probe",
        "result" => "sent_result",
        "centroid" => "sent_centroid",
        _ => "sent_other",
    }
}

/// Evaluate the rule head under a completed partial.
fn instantiate(prog: &DistProgram, rule: &sensorlog_logic::Rule, p: &Partial) -> Option<Tuple> {
    let subst = p.subst();
    let mut terms = Vec::with_capacity(rule.head.args.len());
    for a in &rule.head.args {
        let g = subst.apply(a);
        if !g.is_ground() {
            return None;
        }
        terms.push(prog.reg.eval_term(&g).ok()?);
    }
    Some(Tuple::new(terms))
}

impl App for SensorlogNode {
    type Msg = Payload;

    fn on_start(&mut self, ctx: &mut Ctx<Payload>) {
        self.boot_tick(ctx);
    }

    /// Crash recovery: replay the durable store — restore the sequence
    /// high-water mark, re-announce surviving base facts with their
    /// ORIGINAL ids, and re-send the recent-tombstone window — then run the
    /// normal boot path (new incarnation heartbeat, timers).
    fn on_restart(&mut self, ctx: &mut Ctx<Payload>) {
        self.boot_tick(ctx);
        if let Some(d) = self.durable.clone() {
            let r = d.lock().unwrap().recover();
            self.seq = self.seq.max(r.next_seq);
            self.tele.add(
                Scope::Layer("core.faults"),
                "recovery_replays",
                (r.facts.len() + r.recent_deletes.len()) as u64,
            );
            for (pred, tuple, id) in r.facts {
                self.my_facts.insert((pred, tuple.clone()), id);
                // Original id, current probe time — same rationale as the
                // refresh replay: don't resurrect joins with partners
                // deleted while this node was down.
                let mut rec = FactRecord::insert(pred, tuple, id);
                rec.tau = ctx.local_time;
                self.initiate_update(ctx, rec);
            }
            for del in r.recent_deletes {
                self.initiate_update(ctx, del);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Payload>, from: NodeId, msg: Payload) {
        match msg {
            // Heartbeats are 1-hop and identified by their radio sender.
            Payload::Heartbeat { version, boot_ts } => {
                self.handle_heartbeat(ctx, from, version, boot_ts)
            }
            other => self.handle_payload(ctx, other),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Payload>, tag: u64) {
        match self.timers.remove(&tag) {
            Some(TimerAction::StartJoin(fact)) => self.start_join(ctx, fact),
            Some(TimerAction::Holddown(pred, tuple)) => self.fire_holddown(ctx, pred, tuple),
            Some(TimerAction::HeartbeatTick) => self.heartbeat_tick(ctx),
            Some(TimerAction::LeaseTick) => self.lease_tick(ctx),
            Some(TimerAction::RefreshTick) => self.refresh_tick(ctx),
            Some(TimerAction::ExpireReplica(pred, tuple)) => {
                self.frags.remove(pred, &tuple);
                self.frag_ids.remove(&(pred, tuple));
            }
            Some(TimerAction::ExpireOwned(pred, tuple)) => {
                // Only expire if genuinely past the window (a later delta
                // re-armed a fresher timer otherwise).
                if let (Some(&w), Some(entry)) = (
                    self.prog.windows.get(&pred),
                    self.owned.get(&(pred, tuple.clone())),
                ) {
                    let stale = entry
                        .id
                        .is_none_or(|id| id.ts.saturating_add(w) < ctx.local_time);
                    if stale && !entry.holddown_armed && self.owned.remove(&(pred, tuple)).is_some()
                    {
                        if let Some(c) = self.owned_per_pred.get_mut(&pred) {
                            *c = c.saturating_sub(1);
                        }
                    }
                }
            }
            None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netinfo_grid_routes_without_tables() {
        let net = NetInfo::new(Topology::square_grid(4));
        // x first, then y.
        let from = NodeId(0); // (0,0)
        let dest = NodeId(15); // (3,3)
        let hop = net.next_hop(from, dest);
        assert_eq!(hop, Some(NodeId(1))); // (1,0)
        let hop2 = net.next_hop(NodeId(3), dest); // (3,0) -> up
        assert_eq!(hop2, Some(NodeId(7))); // (3,1)
    }

    #[test]
    fn netinfo_geometric_uses_bfs_tables() {
        let topo = Topology::random_geometric(20, 4.0, 1.7, 5).unwrap();
        let net = NetInfo::new(topo.clone());
        // Hop chains always terminate at the destination.
        for (a, b) in [(0u32, 19u32), (5, 12)] {
            let (mut cur, dest) = (NodeId(a), NodeId(b));
            let mut hops = 0;
            while cur != dest {
                let nxt = net.next_hop(cur, dest).expect("connected topology");
                assert!(topo.are_neighbors(cur, nxt), "{cur}->{nxt} not a link");
                cur = nxt;
                hops += 1;
                assert!(hops <= topo.len(), "routing loop");
            }
        }
    }

    #[test]
    fn netinfo_disconnected_returns_none_not_panic() {
        // Two 2-node islands far apart: cross-island routes must be None.
        let topo = Topology::from_positions(
            vec![(0.0, 0.0), (1.0, 0.0), (100.0, 0.0), (101.0, 0.0)],
            1.5,
        );
        assert!(!topo.is_connected());
        let net = NetInfo::new(topo);
        assert_eq!(net.next_hop(NodeId(0), NodeId(1)), Some(NodeId(1)));
        assert_eq!(net.next_hop(NodeId(0), NodeId(2)), None);
        assert_eq!(net.next_hop(NodeId(3), NodeId(1)), None);
        assert_eq!(net.next_hop(NodeId(2), NodeId(3)), Some(NodeId(3)));
    }

    #[test]
    fn rtconfig_defaults_are_sane() {
        let c = RtConfig::default();
        assert!(c.tau_s > 0 && c.tau_j > 0);
        assert_eq!(c.pass_mode, crate::strategy::PassMode::OnePass);
        assert!(matches!(c.strategy, Strategy::Perpendicular { .. }));
        assert!(c.faults.is_none(), "fault plane must be opt-in");
    }

    fn test_node(cfg: RtConfig) -> SensorlogNode {
        let prog = Arc::new(
            crate::plan::compile_source(
                ".output q.\nq(X, Y) :- r1(X, T), r2(Y, T).",
                sensorlog_logic::builtin::BuiltinRegistry::standard(),
                crate::plan::PlanTiming::default(),
            )
            .unwrap(),
        );
        let shapes = Arc::new(
            prog.analysis
                .program
                .rules
                .iter()
                .map(crate::partial::RuleShape::of)
                .collect::<Vec<_>>(),
        );
        let net = Arc::new(NetInfo::new(Topology::square_grid(4)));
        SensorlogNode::new(
            NodeId(0),
            prog,
            Arc::new(cfg),
            net,
            shapes,
            Telemetry::disabled(),
        )
    }

    /// Satellite: with the fault plane active the adaptive holddown's
    /// upper clamp tightens from τj to (τj/4).max(10) — chaos churn must
    /// not let one inflated lag observation hold retractions for seconds.
    #[test]
    fn holddown_clamp_tightens_under_fault_plane() {
        let mut plain = test_node(RtConfig::default());
        let mut faulty = test_node(RtConfig {
            faults: Some(FaultPlaneCfg::default()),
            ..RtConfig::default()
        });
        // Before any lag observation both use the 100 ms fallback (already
        // under the 750 ms chaos cap for the default τj = 3000).
        assert_eq!(plain.default_holddown(), 100);
        assert_eq!(faulty.default_holddown(), 100);
        // A pathological lag tail (p95 ≈ 4 s/hop on a 6-hop-deep grid)
        // saturates both clamps.
        for n in [&mut plain, &mut faulty] {
            for _ in 0..50 {
                n.hop_lag.observe(4_000);
            }
        }
        assert_eq!(plain.default_holddown(), 3_000, "fault-free clamp is τj");
        assert_eq!(
            faulty.default_holddown(),
            750,
            "fault-plane clamp is (τj/4).max(10)"
        );
    }

    /// The liveness filter: a derivation dies with its input's origin, a
    /// derived input predates its owner's reboot, and base-fact inputs
    /// survive reboots (recovery re-announces them with original ids).
    #[test]
    fn key_live_filters_dead_and_stale_inputs() {
        let node = test_node(RtConfig {
            faults: Some(FaultPlaneCfg::default()),
            ..RtConfig::default()
        });
        let rule_id = node.prog.analysis.program.rules[0].id;
        let mk = |n: u32, ts: SimTime| TupleId {
            node: NodeId(n),
            ts,
            seq: 0,
        };
        // Inputs at body literals 0 (r1) and 1 (r2) — both base predicates.
        let key = DerivationKey::new(rule_id, vec![(0, mk(3, 100)), (1, mk(7, 200))]);
        let mut liveness: HashMap<NodeId, LiveEntry> = HashMap::new();
        let live =
            |lv: &HashMap<NodeId, LiveEntry>, k| key_live(lv, &node.rule_body_preds, &node.idb, k);
        assert!(live(&liveness, &key), "no knowledge: presumed alive");
        liveness.insert(
            NodeId(3),
            LiveEntry {
                version: 500,
                alive: false,
                boot_ts: 0,
            },
        );
        assert!(!live(&liveness, &key), "dead input origin kills the key");
        liveness.insert(
            NodeId(3),
            LiveEntry {
                version: 900,
                alive: true,
                boot_ts: 800, // rebooted after minting ts=100
            },
        );
        assert!(
            live(&liveness, &key),
            "base-fact inputs survive reboots (recovery replays them)"
        );
        // A derived (IDB) input minted before its owner's reboot is stale.
        let idb_key = DerivationKey::new(usize::MAX - 1, vec![(0, mk(3, 100))]);
        let mut body = HashMap::new();
        body.insert(usize::MAX - 1, vec![Some(Symbol::intern("q"))]);
        assert!(
            !key_live(&liveness, &body, &node.idb, &idb_key),
            "stale IDB input (minted before owner reboot) kills the key"
        );
        // Static facts are immune.
        let static_key = DerivationKey::new(usize::MAX, Vec::new());
        assert!(live(&liveness, &static_key));
    }
}
