//! Cross-crate end-to-end scenarios: the paper's three running examples as
//! assertions, plus engine-equivalence checks spanning the workspace.

use sensorlog::core::workload::{graph_edges, VehicleWorkload};
use sensorlog::netstack::flood::run_flood;
use sensorlog::prelude::*;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

#[test]
fn example1_battlefield_full_pipeline() {
    let program = r#"
        .output uncov.
        cov(L, T)   :- veh("enemy", L, T), veh("friendly", F, T), dist(L, F) <= 8.
        uncov(L, T) :- not cov(L, T), veh("enemy", L, T).
    "#;
    let topo = Topology::square_grid(5);
    let mut d = Deployment::new(
        program,
        BuiltinRegistry::standard(),
        topo.clone(),
        DeployConfig::default(),
    )
    .unwrap();
    let events = VehicleWorkload {
        n_enemy: 2,
        n_friendly: 1,
        interval: 20_000,
        duration: 80_000,
        seed: 7,
    }
    .events(&topo);
    assert!(!events.is_empty());
    d.schedule_all(events.clone());
    d.run(100_000_000);
    let report = oracle::check(&d, &events, sym("uncov"));
    assert!(
        report.exact(),
        "missing {:?} spurious {:?}",
        report.missing,
        report.spurious
    );
}

#[test]
fn example2_trajectories_with_function_symbols() {
    use sensorlog::logic::builtin::stdlib;
    let mut reg = BuiltinRegistry::standard();
    stdlib::register_tracking(&mut reg);
    stdlib::register_lists(&mut reg);
    let program = r#"
        notstart(R2)   :- report(R1), report(R2), close(R1, R2, 3, 2).
        notlast(R1)    :- report(R1), report(R2), close(R1, R2, 3, 2).
        traj([R2, R1]) :- report(R1), report(R2), close(R1, R2, 3, 2), not notstart(R1).
        traj([R2 | T]) :- traj(T), R1 == first(T), report(R2), close(R1, R2, 3, 2).
        complete(T)    :- traj(T), R == first(T), not notlast(R).
        parallel(L1, L2) :- complete(L1), complete(L2), L1 < L2, is_parallel(L1, L2, 0.1).
    "#;
    let engine = Engine::from_source(program, reg).unwrap();
    let mut edb = Database::new();
    edb.load_facts(
        r#"
        report(r(0, 0, 0)). report(r(2, 0, 1)). report(r(4, 0, 2)).
        report(r(0, 5, 0)). report(r(2, 5, 1)). report(r(4, 5, 2)).
        "#,
    )
    .unwrap();
    let out = engine.run(&edb).unwrap();
    assert_eq!(out.len_of(sym("complete")), 2);
    assert_eq!(out.len_of(sym("parallel")), 1);
}

#[test]
fn example3_logich_in_network_equals_flood_tree_depths() {
    let program = r#"
        .output h.
        h(0, 0, 0).
        h(0, X, 1) :- g(0, X).
        hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
        h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
    "#;
    let topo = Topology::square_grid(3);
    let mut d = Deployment::new(
        program,
        BuiltinRegistry::standard(),
        topo.clone(),
        DeployConfig::default(),
    )
    .unwrap();
    d.schedule_all(graph_edges(&topo, 100, 300));
    d.run(100_000_000);
    let h = d.results(sym("h"));

    let flood = run_flood(&topo, NodeId(0), SimConfig::default());
    for node in topo.nodes() {
        let flood_depth = flood.tree[node.index()].1.unwrap() as i64;
        let deductive: Vec<i64> = h
            .iter()
            .filter(|t| t.get(1) == Term::Int(node.0 as i64))
            .map(|t| t.get(2).as_i64().unwrap())
            .collect();
        assert!(
            deductive.iter().all(|&d| d == flood_depth) && !deductive.is_empty(),
            "node {node}: deductive {deductive:?} vs flood {flood_depth}"
        );
    }
}

#[test]
fn centralized_engines_agree_on_mixed_updates() {
    // Batch, incremental, and DRed engines must agree on the same net EDB.
    let program = r#"
        cov(V, K)   :- sight(V, K), supp(S, K).
        alert(V, K) :- not cov(V, K), sight(V, K).
    "#;
    let reg = BuiltinRegistry::standard;
    let mut inc = IncrementalEngine::from_source(program, reg()).unwrap();
    let mut dred = sensorlog::eval::rederive::RederiveEngine::from_source(program, reg()).unwrap();
    let mut updates = Vec::new();
    let mut ts = 0;
    for k in 0..4i64 {
        for v in 0..10i64 {
            ts += 1;
            updates.push(Update::insert(
                sym("sight"),
                Tuple::new(vec![Term::Int(v), Term::Int(k)]),
                ts,
            ));
        }
        if k % 2 == 0 {
            ts += 1;
            updates.push(Update::insert(
                sym("supp"),
                Tuple::new(vec![Term::Int(99), Term::Int(k)]),
                ts,
            ));
        }
    }
    // Delete one suppressor later.
    ts += 1;
    updates.push(Update::delete(
        sym("supp"),
        Tuple::new(vec![Term::Int(99), Term::Int(0)]),
        ts,
    ));
    for u in &updates {
        inc.apply(u.clone()).unwrap();
        dred.apply(u.clone()).unwrap();
    }
    // Oracle: batch over the net EDB.
    let batch = Engine::from_source(program, reg()).unwrap();
    let mut edb = Database::new();
    for p in [sym("sight"), sym("supp")] {
        for t in inc.db.sorted(p) {
            edb.insert(p, t);
        }
    }
    let expect = batch.run(&edb).unwrap();
    assert_eq!(inc.db.sorted(sym("alert")), expect.sorted(sym("alert")));
    assert_eq!(dred.db.sorted(sym("alert")), expect.sorted(sym("alert")));
    // Epoch 0 lost its suppressor: all 10 alerts live; epoch 2 covered.
    assert_eq!(
        inc.db
            .sorted(sym("alert"))
            .iter()
            .filter(|t| t.get(1) == Term::Int(0))
            .count(),
        10
    );
}

#[test]
fn window_expiry_end_to_end() {
    let program = r#"
        .window s 1000.
        q(X) :- s(X).
    "#;
    let mut inc = IncrementalEngine::from_source(program, BuiltinRegistry::standard()).unwrap();
    inc.apply(Update::insert(
        sym("s"),
        Tuple::new(vec![Term::Int(1)]),
        100,
    ))
    .unwrap();
    inc.apply(Update::insert(
        sym("s"),
        Tuple::new(vec![Term::Int(2)]),
        900,
    ))
    .unwrap();
    assert_eq!(inc.db.len_of(sym("q")), 2);
    inc.advance_time(1_200);
    // s(1) expired (100 + 1000 <= 1200), s(2) still in window.
    assert_eq!(inc.db.len_of(sym("s")), 1);
    assert_eq!(inc.db.len_of(sym("q")), 1);
}

#[test]
fn magic_and_full_evaluation_agree_end_to_end() {
    use sensorlog::logic::magic::{magic_transform, Query};
    use sensorlog::logic::Atom;
    let program = r#"
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, Z), t(Z, Y).
    "#;
    let prog = parse_program(program).unwrap();
    let reg = BuiltinRegistry::standard();
    let mut edb = Database::new();
    for (a, b) in [(1, 2), (2, 3), (3, 4), (10, 11)] {
        edb.insert(sym("e"), Tuple::new(vec![Term::Int(a), Term::Int(b)]));
    }
    let analysis = analyze(&prog, &reg).unwrap();
    let full = Engine::new(analysis, reg.clone()).run(&edb).unwrap();
    let answers: Vec<Tuple> = full
        .sorted(sym("t"))
        .into_iter()
        .filter(|t| t.get(0) == Term::Int(1))
        .collect();
    assert_eq!(answers.len(), 3);

    let q = Query {
        atom: Atom::new("t", vec![Term::Int(1), Term::var("Y")]),
    };
    let magic = magic_transform(&prog, &q);
    assert!(magic.applied);
    let mut magic_edb = edb.clone();
    for (p, args) in &magic.seeds {
        magic_edb.insert(*p, Tuple::new(args.clone()));
    }
    let m_analysis = analyze(&magic.program, &reg).unwrap();
    let magical = Engine::new(m_analysis, reg).run(&magic_edb).unwrap();
    let magic_answers: Vec<Tuple> = magical
        .sorted(magic.answer_pred)
        .into_iter()
        .filter(|t| t.get(0) == Term::Int(1))
        .collect();
    assert_eq!(magic_answers, answers);
    // And magic never touched the unreachable component.
    assert!(!magical
        .sorted(magic.answer_pred)
        .iter()
        .any(|t| t.get(0) == Term::Int(10)));
}
