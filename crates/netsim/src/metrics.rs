//! Communication accounting: the paper's evaluation currency.
//!
//! Tracks per-node and per-message-kind transmissions, receptions, bytes
//! and losses, plus a simple radio energy model. "Communication cost" in
//! the experiment harness means `total_tx` unless stated otherwise; "load
//! balance" compares `max_node_tx` against the mean.

use crate::topology::NodeId;
use std::collections::BTreeMap;

/// Radio energy model (defaults loosely follow mica2-class motes: sending
/// is ~1.5× the cost of receiving, with a fixed per-packet overhead).
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    pub tx_per_byte_uj: f64,
    pub rx_per_byte_uj: f64,
    pub tx_base_uj: f64,
    pub rx_base_uj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            tx_per_byte_uj: 0.6,
            rx_per_byte_uj: 0.4,
            tx_base_uj: 10.0,
            rx_base_uj: 7.0,
        }
    }
}

/// Per-node counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeCounters {
    pub tx: u64,
    pub rx: u64,
    pub tx_bytes: u64,
    pub rx_bytes: u64,
}

/// Whole-run metrics.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    per_node: Vec<NodeCounters>,
    /// tx message count per message kind (storage / join / result / …).
    pub tx_by_kind: BTreeMap<&'static str, u64>,
    pub lost: u64,
    pub delivered: u64,
    pub energy: EnergyModel,
}

impl Metrics {
    pub fn new(n_nodes: usize) -> Metrics {
        Metrics {
            per_node: vec![NodeCounters::default(); n_nodes],
            energy: EnergyModel::default(),
            ..Metrics::default()
        }
    }

    pub fn record_tx(&mut self, node: NodeId, bytes: usize, kind: &'static str) {
        let c = &mut self.per_node[node.index()];
        c.tx += 1;
        c.tx_bytes += bytes as u64;
        *self.tx_by_kind.entry(kind).or_insert(0) += 1;
    }

    pub fn record_rx(&mut self, node: NodeId, bytes: usize) {
        let c = &mut self.per_node[node.index()];
        c.rx += 1;
        c.rx_bytes += bytes as u64;
        self.delivered += 1;
    }

    pub fn record_loss(&mut self) {
        self.lost += 1;
    }

    pub fn node(&self, id: NodeId) -> NodeCounters {
        self.per_node[id.index()]
    }

    /// Total messages transmitted.
    pub fn total_tx(&self) -> u64 {
        self.per_node.iter().map(|c| c.tx).sum()
    }

    pub fn total_tx_bytes(&self) -> u64 {
        self.per_node.iter().map(|c| c.tx_bytes).sum()
    }

    pub fn total_rx(&self) -> u64 {
        self.per_node.iter().map(|c| c.rx).sum()
    }

    /// Heaviest node's message load (tx + rx): the hotspot metric.
    pub fn max_node_load(&self) -> u64 {
        self.per_node.iter().map(|c| c.tx + c.rx).max().unwrap_or(0)
    }

    /// Mean node message load.
    pub fn mean_node_load(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.per_node
            .iter()
            .map(|c| (c.tx + c.rx) as f64)
            .sum::<f64>()
            / self.per_node.len() as f64
    }

    /// Load imbalance factor: max / mean (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_node_load();
        if mean == 0.0 {
            return 1.0;
        }
        self.max_node_load() as f64 / mean
    }

    /// Total radio energy in microjoules under the energy model.
    pub fn total_energy_uj(&self) -> f64 {
        self.per_node
            .iter()
            .map(|c| {
                c.tx as f64 * self.energy.tx_base_uj
                    + c.tx_bytes as f64 * self.energy.tx_per_byte_uj
                    + c.rx as f64 * self.energy.rx_base_uj
                    + c.rx_bytes as f64 * self.energy.rx_per_byte_uj
            })
            .sum()
    }

    /// Delivery ratio = delivered / (delivered + lost).
    pub fn delivery_ratio(&self) -> f64 {
        let attempts = self.delivered + self.lost;
        if attempts == 0 {
            1.0
        } else {
            self.delivered as f64 / attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new(3);
        m.record_tx(NodeId(0), 100, "storage");
        m.record_tx(NodeId(0), 50, "join");
        m.record_rx(NodeId(1), 100);
        m.record_loss();
        assert_eq!(m.total_tx(), 2);
        assert_eq!(m.total_tx_bytes(), 150);
        assert_eq!(m.total_rx(), 1);
        assert_eq!(m.node(NodeId(0)).tx, 2);
        assert_eq!(m.tx_by_kind["storage"], 1);
        assert_eq!(m.lost, 1);
        assert!((m.delivery_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn load_metrics() {
        let mut m = Metrics::new(4);
        for _ in 0..9 {
            m.record_tx(NodeId(2), 10, "x");
        }
        m.record_tx(NodeId(0), 10, "x");
        // loads: 10 tx total; node2 = 9, mean = 2.5
        assert_eq!(m.max_node_load(), 9);
        assert!((m.mean_node_load() - 2.5).abs() < 1e-9);
        assert!((m.imbalance() - 3.6).abs() < 1e-9);
    }

    #[test]
    fn energy_model() {
        let mut m = Metrics::new(1);
        m.record_tx(NodeId(0), 10, "x");
        let e = m.total_energy_uj();
        assert!((e - (10.0 + 6.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_sane() {
        let m = Metrics::new(0);
        assert_eq!(m.total_tx(), 0);
        assert_eq!(m.max_node_load(), 0);
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-9);
        assert!((m.imbalance() - 1.0).abs() < 1e-9);
        assert_eq!(m.mean_node_load(), 0.0);
        assert_eq!(m.total_energy_uj(), 0.0);
    }

    #[test]
    fn all_loss_delivery_ratio_is_zero() {
        let mut m = Metrics::new(2);
        for _ in 0..5 {
            m.record_tx(NodeId(0), 8, "x");
            m.record_loss();
        }
        assert_eq!(m.delivered, 0);
        assert_eq!(m.lost, 5);
        assert!((m.delivery_ratio() - 0.0).abs() < 1e-9);
        // tx happened even though nothing arrived: energy/load still count.
        assert_eq!(m.total_tx(), 5);
        assert!(m.total_energy_uj() > 0.0);
    }

    #[test]
    fn nodes_but_no_traffic() {
        let m = Metrics::new(8);
        // No activity at all: mean 0 must not divide-by-zero imbalance.
        assert!((m.imbalance() - 1.0).abs() < 1e-9);
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-9);
        assert_eq!(m.node(NodeId(7)), NodeCounters::default());
    }

    #[test]
    fn perfectly_balanced_imbalance_is_one() {
        let mut m = Metrics::new(4);
        for i in 0..4 {
            m.record_tx(NodeId(i), 10, "x");
        }
        assert!((m.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rx_energy_counts_receiver_side() {
        let mut m = Metrics::new(2);
        m.record_rx(NodeId(1), 10);
        // rx_base 7.0 + 10 bytes * 0.4
        assert!((m.total_energy_uj() - 11.0).abs() < 1e-9);
        assert_eq!(m.total_rx(), 1);
        assert_eq!(m.total_tx(), 0);
        assert!((m.delivery_ratio() - 1.0).abs() < 1e-9);
    }
}
