//! Golden tests for the static analyzer's machine-readable output
//! (`sensorlog check --format=json`). Each case pins the exact JSON the
//! analyzer emits for a program — spans, codes, bound formulas, and plane
//! assignments — so any drift in the diagnostic surface is a deliberate,
//! reviewed change rather than an accident. Sources must match the
//! embedded strings byte-for-byte: the pinned `start`/`end` fields are
//! byte offsets into them.

use sensorlog_logic::diag::{check_source, BoundParams};
use sensorlog_logic::BuiltinRegistry;

fn check(src: &str) -> sensorlog_logic::diag::Report {
    let params = BoundParams {
        nodes: 100,
        default_events: 500,
        events: Default::default(),
    };
    check_source(src, &BuiltinRegistry::standard(), &params)
}

fn assert_golden(label: &str, src: &str, expected: &str) -> sensorlog_logic::diag::Report {
    let rep = check(src);
    let got = rep.to_json();
    assert_eq!(
        got, expected,
        "{label}: JSON drifted\n--- got ---\n{got}\n--- want ---\n{expected}"
    );
    rep
}

// ---------------------------------------------------------------- logicH

const LOGIC_H: &str = "\
.base g.
.window g 1000.
.output h.
h(a, a, 0).
h(0, X, 1) :- g(0, X).
hp(Y, D + 1) :- h(_, Y, D'), (D + 1) > D', h(_, X, D), g(X, Y).
h(X, Y, D + 1) :- g(X, Y), h(_, X, D), not hp(Y, D + 1).
";

const LOGIC_H_JSON: &str = r#"{
  "diagnostics": [
    {"code": "mem.bound", "severity": "info", "rule": null, "pred": "h", "line": 4, "col": 1, "start": 36, "end": 47, "message": "static tuple bound for `h`: (1 + E(g) + E(g)) = 1001", "suggestions": []},
    {"code": "mem.bound", "severity": "info", "rule": null, "pred": "hp", "line": 6, "col": 1, "start": 71, "end": 134, "message": "static tuple bound for `hp`: 3 * E(g) = 1500", "suggestions": []},
    {"code": "plan.negation-multipass", "severity": "info", "rule": 3, "pred": "hp", "line": 7, "col": 40, "start": 174, "end": 190, "message": "rule #3: negated derived subgoal `hp` forces multi-pass (stratum-ordered) evaluation", "suggestions": []},
    {"code": "comm.plane", "severity": "info", "rule": null, "pred": "h", "line": 4, "col": 1, "start": 36, "end": 47, "message": "predicate `h` evaluates on the neighbor-broadcast plane", "suggestions": []},
    {"code": "comm.plane", "severity": "info", "rule": null, "pred": "hp", "line": 6, "col": 1, "start": 71, "end": 134, "message": "predicate `hp` evaluates on the neighbor-broadcast plane", "suggestions": []},
    {"code": "cost.comm-estimate", "severity": "info", "rule": null, "pred": "h", "line": 4, "col": 1, "start": 36, "end": 47, "message": "estimated messages attributable to `h` (neighbor-broadcast plane): 20 * (1 + E(g) + E(g)) * N = 2002000", "suggestions": []},
    {"code": "cost.comm-estimate", "severity": "info", "rule": null, "pred": "hp", "line": 6, "col": 1, "start": 71, "end": 134, "message": "estimated messages attributable to `hp` (neighbor-broadcast plane): 8 * 3 * E(g) * N = 1200000", "suggestions": []},
    {"code": "cost.holddown-implicit", "severity": "info", "rule": null, "pred": "hp", "line": 6, "col": 1, "start": 71, "end": 134, "message": "XY-staged predicate `hp` has no `.holddown` declaration; the planner default (100 ms) applies silently", "suggestions": [{"start": 0, "end": 0, "replacement": ".holddown hp 100.\n", "note": "declare the retraction hold-down for `hp` explicitly", "machine_applicable": true}]},
    {"code": "cost.holddown-implicit", "severity": "info", "rule": null, "pred": "h", "line": 4, "col": 1, "start": 36, "end": 47, "message": "XY-staged predicate `h` has no `.holddown` declaration; the planner default (2100 ms) applies silently", "suggestions": [{"start": 0, "end": 0, "replacement": ".holddown h 2100.\n", "note": "declare the retraction hold-down for `h` explicitly", "machine_applicable": true}]}
  ],
  "bounds": {
    "g": {"formula": "E(g)", "value": 500},
    "h": {"formula": "(1 + E(g) + E(g))", "value": 1001},
    "hp": {"formula": "3 * E(g)", "value": 1500}
  },
  "planes": {
    "g": "local",
    "h": "neighbor-broadcast",
    "hp": "neighbor-broadcast"
  }
}
"#;

#[test]
fn logich_report_is_pinned() {
    let rep = assert_golden("logicH", LOGIC_H, LOGIC_H_JSON);
    assert!(!rep.has_errors() && !rep.has_warnings());
}

// ---------------------------------------------------------------- logicJ

const LOGIC_J: &str = "\
.base g.
.window g 1000.
.output j.
j(0, 0).
j(X, 1) :- g(0, X).
jp(Y, D + 1) :- j(Y, D'), (D + 1) > D', j(X, D), g(X, Y).
j(Y, D + 1) :- g(X, Y), j(X, D), not jp(Y, D + 1).
";

const LOGIC_J_JSON: &str = r#"{
  "diagnostics": [
    {"code": "mem.bound", "severity": "info", "rule": null, "pred": "j", "line": 4, "col": 1, "start": 36, "end": 44, "message": "static tuple bound for `j`: (1 + E(g) + E(g)) = 1001", "suggestions": []},
    {"code": "mem.bound", "severity": "info", "rule": null, "pred": "jp", "line": 6, "col": 1, "start": 65, "end": 122, "message": "static tuple bound for `jp`: 3 * E(g) = 1500", "suggestions": []},
    {"code": "plan.negation-multipass", "severity": "info", "rule": 3, "pred": "jp", "line": 7, "col": 34, "start": 156, "end": 172, "message": "rule #3: negated derived subgoal `jp` forces multi-pass (stratum-ordered) evaluation", "suggestions": []},
    {"code": "comm.plane", "severity": "info", "rule": null, "pred": "j", "line": 4, "col": 1, "start": 36, "end": 44, "message": "predicate `j` evaluates on the neighbor-broadcast plane", "suggestions": []},
    {"code": "comm.plane", "severity": "info", "rule": null, "pred": "jp", "line": 6, "col": 1, "start": 65, "end": 122, "message": "predicate `jp` evaluates on the neighbor-broadcast plane", "suggestions": []},
    {"code": "cost.comm-estimate", "severity": "info", "rule": null, "pred": "j", "line": 4, "col": 1, "start": 36, "end": 44, "message": "estimated messages attributable to `j` (neighbor-broadcast plane): 20 * (1 + E(g) + E(g)) * N = 2002000", "suggestions": []},
    {"code": "cost.comm-estimate", "severity": "info", "rule": null, "pred": "jp", "line": 6, "col": 1, "start": 65, "end": 122, "message": "estimated messages attributable to `jp` (neighbor-broadcast plane): 8 * 3 * E(g) * N = 1200000", "suggestions": []},
    {"code": "cost.holddown-implicit", "severity": "info", "rule": null, "pred": "jp", "line": 6, "col": 1, "start": 65, "end": 122, "message": "XY-staged predicate `jp` has no `.holddown` declaration; the planner default (100 ms) applies silently", "suggestions": [{"start": 0, "end": 0, "replacement": ".holddown jp 100.\n", "note": "declare the retraction hold-down for `jp` explicitly", "machine_applicable": true}]},
    {"code": "cost.holddown-implicit", "severity": "info", "rule": null, "pred": "j", "line": 4, "col": 1, "start": 36, "end": 44, "message": "XY-staged predicate `j` has no `.holddown` declaration; the planner default (2100 ms) applies silently", "suggestions": [{"start": 0, "end": 0, "replacement": ".holddown j 2100.\n", "note": "declare the retraction hold-down for `j` explicitly", "machine_applicable": true}]}
  ],
  "bounds": {
    "g": {"formula": "E(g)", "value": 500},
    "j": {"formula": "(1 + E(g) + E(g))", "value": 1001},
    "jp": {"formula": "3 * E(g)", "value": 1500}
  },
  "planes": {
    "g": "local",
    "j": "neighbor-broadcast",
    "jp": "neighbor-broadcast"
  }
}
"#;

#[test]
fn logicj_report_is_pinned() {
    let rep = assert_golden("logicJ", LOGIC_J, LOGIC_J_JSON);
    assert!(!rep.has_errors() && !rep.has_warnings());
}

// ------------------------------------------------------ broken: unsafe rule

const UNSAFE: &str = "\
.output p.
p(X, Y) :- q(X).
";

const UNSAFE_JSON: &str = r#"{
  "diagnostics": [
    {"code": "safety.unbound", "severity": "error", "rule": 0, "pred": null, "line": 2, "col": 1, "start": 11, "end": 27, "message": "unsafe rule #0 (head) at 2:1: variable(s) Y not bound by any positive relational subgoal", "suggestions": []}
  ],
  "bounds": {},
  "planes": {}
}
"#;

#[test]
fn unsafe_rule_report_is_pinned() {
    let rep = assert_golden("unsafe", UNSAFE, UNSAFE_JSON);
    assert!(rep.has_errors());
}

// -------------------------------------------------- broken: cartesian join

const CARTESIAN: &str = "\
.base r. .base s.
.window r 10. .window s 10.
.output q.
q(X, Y) :- r(X), s(Y).
";

const CARTESIAN_JSON: &str = r#"{
  "diagnostics": [
    {"code": "mem.bound", "severity": "info", "rule": null, "pred": "q", "line": 4, "col": 1, "start": 57, "end": 79, "message": "static tuple bound for `q`: E(r) * E(s) = 250000", "suggestions": []},
    {"code": "plan.cartesian-join", "severity": "warning", "rule": 0, "pred": "s", "line": 4, "col": 18, "start": 74, "end": 78, "message": "rule #0: subgoal `s` is probed with no bound column (cartesian join)", "suggestions": []},
    {"code": "comm.plane", "severity": "info", "rule": null, "pred": "q", "line": 4, "col": 1, "start": 57, "end": 79, "message": "predicate `q` evaluates on the tree-routed plane", "suggestions": []},
    {"code": "cost.comm-estimate", "severity": "info", "rule": null, "pred": "q", "line": 4, "col": 1, "start": 57, "end": 79, "message": "estimated messages attributable to `q` (tree-routed plane): 16 * E(r) * E(s) * N = 400000000", "suggestions": []}
  ],
  "bounds": {
    "q": {"formula": "E(r) * E(s)", "value": 250000},
    "r": {"formula": "E(r)", "value": 500},
    "s": {"formula": "E(s)", "value": 500}
  },
  "planes": {
    "q": "tree-routed",
    "r": "local",
    "s": "local"
  }
}
"#;

#[test]
fn cartesian_join_report_is_pinned() {
    let rep = assert_golden("cartesian", CARTESIAN, CARTESIAN_JSON);
    assert!(!rep.has_errors() && rep.has_warnings());
}

// ------------------------------------------------ broken: dead predicate

const DEAD: &str = "\
.base e.
.window e 10.
.output t.
t(X, Y) :- e(X, Y).
orphan(X) :- e(X, _).
";

const DEAD_JSON: &str = r#"{
  "diagnostics": [
    {"code": "mem.bound", "severity": "info", "rule": null, "pred": "orphan", "line": 5, "col": 1, "start": 54, "end": 75, "message": "static tuple bound for `orphan`: E(e) = 500", "suggestions": []},
    {"code": "mem.bound", "severity": "info", "rule": null, "pred": "t", "line": 4, "col": 1, "start": 34, "end": 53, "message": "static tuple bound for `t`: E(e) = 500", "suggestions": []},
    {"code": "plan.dead-pred", "severity": "warning", "rule": null, "pred": "orphan", "line": 5, "col": 1, "start": 54, "end": 75, "message": "predicate `orphan` is unreachable from any `.output` query", "suggestions": []},
    {"code": "plan.dead-rule", "severity": "warning", "rule": 1, "pred": "orphan", "line": 5, "col": 1, "start": 54, "end": 75, "message": "rule #1 derives dead predicate `orphan`", "suggestions": []},
    {"code": "comm.plane", "severity": "info", "rule": null, "pred": "orphan", "line": 5, "col": 1, "start": 54, "end": 75, "message": "predicate `orphan` evaluates on the local plane", "suggestions": []},
    {"code": "comm.plane", "severity": "info", "rule": null, "pred": "t", "line": 4, "col": 1, "start": 34, "end": 53, "message": "predicate `t` evaluates on the local plane", "suggestions": []},
    {"code": "cost.comm-estimate", "severity": "info", "rule": null, "pred": "orphan", "line": 5, "col": 1, "start": 54, "end": 75, "message": "estimated messages attributable to `orphan` (local plane): 4 * E(e) * N = 200000", "suggestions": []},
    {"code": "cost.comm-estimate", "severity": "info", "rule": null, "pred": "t", "line": 4, "col": 1, "start": 34, "end": 53, "message": "estimated messages attributable to `t` (local plane): 4 * E(e) * N = 200000", "suggestions": []}
  ],
  "bounds": {
    "e": {"formula": "E(e)", "value": 500},
    "orphan": {"formula": "E(e)", "value": 500},
    "t": {"formula": "E(e)", "value": 500}
  },
  "planes": {
    "e": "local",
    "orphan": "local",
    "t": "local"
  }
}
"#;

#[test]
fn dead_predicate_report_is_pinned() {
    let rep = assert_golden("dead", DEAD, DEAD_JSON);
    assert!(!rep.has_errors() && rep.has_warnings());
}

// ------------------------------------- broken: non-XY negation cycle

const NON_XY: &str = "\
.base move.
.window move 10.
.output win.
win(X) :- move(X, Y), not win(Y).
";

const NON_XY_JSON: &str = r#"{
  "diagnostics": [
    {"code": "stratify.negation-cycle", "severity": "error", "rule": 0, "pred": "win", "line": 4, "col": 1, "start": 42, "end": 75, "message": "program is not stratified: predicate win depends negatively on win (rule #0 at 4:1) within the recursive component {win}; and the XY-stratification check failed: component {win} is not XY-stratified: rule #0: stage of subgoal win is not provably ≤ the head stage", "suggestions": []}
  ],
  "bounds": {},
  "planes": {}
}
"#;

#[test]
fn negation_cycle_report_is_pinned() {
    let rep = assert_golden("non-xy", NON_XY, NON_XY_JSON);
    assert!(rep.has_errors());
}

// ------------------------------------------- broken: unbounded window

const UNWINDOWED: &str = "\
.output t.
t(X, Y) :- e(X, Y).
";

const UNWINDOWED_JSON: &str = r#"{
  "diagnostics": [
    {"code": "mem.bound", "severity": "info", "rule": null, "pred": "t", "line": 2, "col": 1, "start": 11, "end": 30, "message": "static tuple bound for `t`: E(e) = 500", "suggestions": []},
    {"code": "mem.window.unbounded", "severity": "warning", "rule": null, "pred": "e", "line": 2, "col": 12, "start": 22, "end": 29, "message": "base stream `e` has no `.window` and is not declared `.base`: stored tuples grow without bound", "suggestions": [{"start": 0, "end": 0, "replacement": ".window e 60000.\n", "note": "declare a sliding window so `e` tuples expire", "machine_applicable": true}]},
    {"code": "comm.plane", "severity": "info", "rule": null, "pred": "t", "line": 2, "col": 1, "start": 11, "end": 30, "message": "predicate `t` evaluates on the local plane", "suggestions": []},
    {"code": "cost.comm-estimate", "severity": "info", "rule": null, "pred": "t", "line": 2, "col": 1, "start": 11, "end": 30, "message": "estimated messages attributable to `t` (local plane): 4 * E(e) * N = 200000", "suggestions": []}
  ],
  "bounds": {
    "e": {"formula": "E(e)", "value": 500},
    "t": {"formula": "E(e)", "value": 500}
  },
  "planes": {
    "e": "local",
    "t": "local"
  }
}
"#;

#[test]
fn unbounded_window_report_is_pinned() {
    let rep = assert_golden("unwindowed", UNWINDOWED, UNWINDOWED_JSON);
    assert!(!rep.has_errors() && rep.has_warnings());
}

// ----------------------------------------------------------------- widen

const WIDEN: &str = "\
.base a. .base b. .base c.
.window a 10. .window b 10. .window c 10.
.output big.
mid(X, Y) :- a(X, K), b(K, Y).
big(X, Z) :- mid(X, Y), c(Y, Z).
";

const WIDEN_JSON: &str = r#"{
  "diagnostics": [
    {"code": "mem.bound", "severity": "info", "rule": null, "pred": "big", "line": 5, "col": 1, "start": 113, "end": 145, "message": "static tuple bound for `big`: E(a) * E(b) * E(c) = 125000000", "suggestions": []},
    {"code": "mem.bound", "severity": "info", "rule": null, "pred": "mid", "line": 4, "col": 1, "start": 82, "end": 112, "message": "static tuple bound for `mid`: E(a) * E(b) = 250000", "suggestions": []},
    {"code": "comm.plane", "severity": "info", "rule": null, "pred": "big", "line": 5, "col": 1, "start": 113, "end": 145, "message": "predicate `big` evaluates on the tree-routed plane", "suggestions": []},
    {"code": "comm.plane", "severity": "info", "rule": null, "pred": "mid", "line": 4, "col": 1, "start": 82, "end": 112, "message": "predicate `mid` evaluates on the tree-routed plane", "suggestions": []},
    {"code": "comm.widen", "severity": "warning", "rule": 1, "pred": "mid", "line": 5, "col": 14, "start": 126, "end": 135, "message": "rule #1: tree-routed join consumes already tree-routed `mid` — communication plane widens — split the join at `mid` via `mid_local(X, Y) :- mid(X, Y).`", "suggestions": [{"start": 113, "end": 145, "replacement": "mid_local(X, Y) :- mid(X, Y).\nbig(X, Z) :- mid_local(X, Y), c(Y, Z).", "note": "hoist `mid` into local-plane helper `mid_local` so the join consumes it locally", "machine_applicable": true}]},
    {"code": "cost.comm-estimate", "severity": "info", "rule": null, "pred": "big", "line": 5, "col": 1, "start": 113, "end": 145, "message": "estimated messages attributable to `big` (tree-routed plane): 16 * E(a) * E(b) * E(c) * N = 200000000000", "suggestions": []},
    {"code": "cost.comm-estimate", "severity": "info", "rule": null, "pred": "mid", "line": 4, "col": 1, "start": 82, "end": 112, "message": "estimated messages attributable to `mid` (tree-routed plane): 20 * E(a) * E(b) * N = 500000000", "suggestions": []}
  ],
  "bounds": {
    "a": {"formula": "E(a)", "value": 500},
    "b": {"formula": "E(b)", "value": 500},
    "big": {"formula": "E(a) * E(b) * E(c)", "value": 125000000},
    "c": {"formula": "E(c)", "value": 500},
    "mid": {"formula": "E(a) * E(b)", "value": 250000}
  },
  "planes": {
    "a": "local",
    "b": "local",
    "big": "tree-routed",
    "c": "local",
    "mid": "tree-routed"
  }
}
"#;

#[test]
fn comm_widen_split_suggestion_is_pinned() {
    let rep = assert_golden("widen", WIDEN, WIDEN_JSON);
    assert!(!rep.has_errors() && rep.has_warnings());
    // The concrete split must surface in the rendered text too, as a
    // machine-applicable help with the rewritten rules inline.
    let text = rep.to_text();
    assert!(text.contains("split the join at `mid` via `mid_local(X, Y) :- mid(X, Y).`"));
    assert!(text.contains("help [machine-applicable]:"));
    assert!(text.contains("mid_local(X, Y) :- mid(X, Y)."));
    assert!(text.contains("big(X, Z) :- mid_local(X, Y), c(Y, Z)."));
}

// -------------------------------------------------------------- invariants

/// Every diagnostic in every golden program that is attached to source
/// carries a resolvable line:col — the span plumbing must not regress to
/// 0:0 for any pass.
#[test]
fn all_source_diags_carry_spans() {
    for (label, src) in [
        ("logicH", LOGIC_H),
        ("logicJ", LOGIC_J),
        ("unsafe", UNSAFE),
        ("cartesian", CARTESIAN),
        ("dead", DEAD),
        ("non-xy", NON_XY),
        ("unwindowed", UNWINDOWED),
        ("widen", WIDEN),
    ] {
        let rep = check(src);
        assert!(!rep.diags.is_empty(), "{label}: analyzer was silent");
        for d in &rep.diags {
            assert!(
                d.span.is_known(),
                "{label}: diagnostic {} has no span",
                d.code
            );
        }
    }
}
