//! Runtime invariant checking over a [`Deployment`].
//!
//! The distributed runtime maintains redundant state on purpose — counts
//! of derivations at owners, replicated fragments along storage regions,
//! globally unique tuple ids — and each redundancy implies an invariant
//! that must hold at quiescence. This module makes those invariants
//! executable so tests (and debugging sessions) can assert them after any
//! run instead of inferring health from end-to-end results alone:
//!
//! 1. **Count non-negativity** — every per-derivation-key count in an
//!    owner's [`crate::runtime::SensorlogNode`] state is positive at
//!    quiescence. Counts
//!    may be transiently negative mid-run (a delete delta overtaking its
//!    insert on an independent route), which is why this is a quiescence
//!    invariant, not a step invariant.
//! 2. **Tuple-id uniqueness** — a [`TupleId`] denotes one fact network-
//!    wide: no two nodes may bind the same id to different (pred, tuple)
//!    pairs. (The same binding replicated on many nodes is the normal
//!    case and is fine.)
//! 3. **Holddown settlement** — at quiescence no owner entry may have a
//!    holddown still armed or a liveness state that differs from what it
//!    last propagated.
//! 4. **Oracle consistency** (opt-in, loss-free runs only) — gathered
//!    results for an output predicate match the centralized engine on the
//!    net fact set, per [`crate::oracle`]. Under message loss this is
//!    expected to fail for completeness; use the report's metrics
//!    instead.
//! 5. **Static memory/communication bounds** — the observed peak stored
//!    tuples per predicate on every node never exceed the per-node
//!    envelope derived by the frontier-width abstract interpreter
//!    (`sensorlog_logic::absint::frontier`, paper Sec. V), evaluated
//!    against the run's actual topology size and injected-event counts;
//!    and when every predicate has a finite bound, total transmissions
//!    stay under a generous per-update routing envelope and each message
//!    kind stays under its per-kind estimate. A violation
//!    means either the analyzer's bound derivation or the runtime's
//!    storage discipline is wrong — the two are developed independently,
//!    which is what makes the cross-check meaningful.
//! 6. **Message conservation** — network-wide, per message kind, every
//!    transmission attempt is accounted for exactly once:
//!    `tx == rx + lost`. Loss on air, ARQ retransmissions, and drops at
//!    crashed nodes all book a `lost`; anything else delivered books an
//!    `rx`. A gap means the simulator leaked or double-counted a message.
//!    Like (1) and (3) this only holds at quiescence — in-flight messages
//!    have a `tx` but no disposition yet — so the check is skipped on a
//!    non-quiescent simulator. [`Deployment::run`] also debug-asserts it
//!    after every quiescent run.

use crate::deploy::{Deployment, WorkloadEvent};
use crate::oracle;
use crate::strategy::Strategy;
use crate::tupleid::TupleId;
use sensorlog_logic::{Symbol, Tuple};
use sensorlog_netsim::NodeId;
use sensorlog_netstack::ght;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// One invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Node the violation was observed at (`None` for network-wide ones).
    pub node: Option<NodeId>,
    /// Which invariant, as a stable short name.
    pub invariant: &'static str,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "[{}] at {}: {}", self.invariant, n, self.detail),
            None => write!(f, "[{}] {}", self.invariant, self.detail),
        }
    }
}

/// Outcome of an invariant pass.
#[derive(Clone, Debug, Default)]
pub struct InvariantReport {
    pub violations: Vec<Violation>,
}

impl InvariantReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Record one violation (public so out-of-crate checkers — e.g. the
    /// provenance plane's proof checker — report through the same type).
    pub fn push(&mut self, node: Option<NodeId>, invariant: &'static str, detail: String) {
        self.violations.push(Violation {
            node,
            invariant,
            detail,
        });
    }

    /// Merge another report's violations into this one.
    pub fn merge(&mut self, other: InvariantReport) {
        self.violations.extend(other.violations);
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            return write!(f, "all invariants hold");
        }
        writeln!(f, "{} invariant violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Check the structural invariants (1)–(3) over every live node.
///
/// Call at quiescence (after [`Deployment::run`] returns); counts and
/// holddowns are legitimately unsettled while messages are in flight, so
/// a non-quiescent simulator only gets the id-uniqueness check.
pub fn check_structural(d: &Deployment) -> InvariantReport {
    let mut report = InvariantReport::default();
    let quiescent = d.sim.is_quiescent();
    // Count non-negativity only holds on fault-free runs: under the fault
    // plane, repeated tombstone refreshes legitimately leave a clamped −1
    // for derivations whose insert was lost to a crash.
    let check_counts = quiescent && !d.faults_active();
    let mut id_map: HashMap<TupleId, (NodeId, Symbol, Tuple)> = HashMap::new();

    for id in d.sim.topology().nodes() {
        if d.sim.is_failed(id) {
            continue; // crashed nodes keep arbitrary frozen state
        }
        let node = d.sim.node(id);

        if check_counts {
            for (pred, tuple, count) in node.derivation_count_entries() {
                if count < 0 {
                    report.push(
                        Some(id),
                        "count-nonnegative",
                        format!("{pred}{tuple:?} has derivation count {count}"),
                    );
                }
            }
        }
        if quiescent {
            for (pred, tuple) in node.unsettled_owned() {
                report.push(
                    Some(id),
                    "holddown-settled",
                    format!("{pred}{tuple:?} unsettled at quiescence"),
                );
            }
        }

        for (tid, pred, tuple) in node.id_bindings() {
            match id_map.get(&tid) {
                None => {
                    id_map.insert(tid, (id, pred, tuple));
                }
                Some((first_node, p0, t0)) if *p0 != pred || *t0 != tuple => {
                    report.push(
                        None,
                        "tuple-id-unique",
                        format!(
                            "id {tid:?} bound to {p0}{t0:?} at {first_node} \
                             but {pred}{tuple:?} at {id}"
                        ),
                    );
                }
                Some(_) => {} // same binding replicated: fine
            }
        }
    }
    report
}

/// Check invariant (5): observed state never exceeds the static model.
///
/// * **Memory**: each node's peak stored-tuple count for predicate `p`
///   (fragment replicas + owned derived entries) must stay within
///   `2 × T(p)`, where `T(p)` is the frontier-width interpreter's
///   whole-network distinct-tuple bound — a node can hold at most one
///   replica and one owned entry per distinct tuple. Unbounded predicates
///   are skipped.
/// * **Communication**: when *every* predicate has a finite bound, the
///   run's total transmissions must stay within a generous envelope of
///   `8 × nodes` hops per tuple transition (covers storage walks, probe
///   walks, result routing, and flood baselines with slack).
///
/// Unlike the quiescence invariants this holds mid-run too — peaks only
/// grow, and the bound is an all-time ceiling.
pub fn check_static_bounds(d: &Deployment) -> InvariantReport {
    use sensorlog_logic::absint;
    use sensorlog_logic::diag::BoundParams;
    let mut report = InvariantReport::default();
    let params = BoundParams {
        nodes: d.sim.topology().len() as u64,
        default_events: 0,
        events: d.injected_events().clone(),
    };
    let fr = absint::frontier(&d.prog.analysis);
    let bounds = &fr.bounds;

    for id in d.sim.topology().nodes() {
        if d.sim.is_failed(id) {
            continue;
        }
        let node = d.sim.node(id);
        for (&pred, &peak) in &node.peak_pred_stored {
            let Some(expr) = bounds.get(&pred) else {
                continue; // predicate unknown to the analyzer (e.g. magic)
            };
            let Some(t) = expr.eval(&params) else {
                continue; // statically unbounded: nothing to check
            };
            let cap = t.saturating_mul(2);
            if peak as u64 > cap {
                report.push(
                    Some(id),
                    "static-memory-bound",
                    format!(
                        "predicate `{pred}` peaked at {peak} stored tuples \
                         but the static bound allows 2 × ({expr}) = {cap}"
                    ),
                );
            }
        }
    }

    let mut envelope: u64 = 0;
    let mut all_finite = true;
    for expr in bounds.values() {
        match expr.eval(&params) {
            Some(t) => envelope = envelope.saturating_add(t.saturating_mul(2)),
            None => {
                all_finite = false;
                break;
            }
        }
    }
    if all_finite {
        let per_update = 8u64.saturating_mul(d.sim.topology().len() as u64);
        let cap = envelope.saturating_mul(per_update);
        let tx = d.metrics().total_tx();
        if tx > cap {
            report.push(
                None,
                "static-comm-envelope",
                format!(
                    "{tx} total transmissions exceed the static envelope \
                     {cap} (= {envelope} tuple transitions × {per_update} hops)"
                ),
            );
        }
    }

    // Per-kind envelopes from the same frontier pass: `store`, `probe`,
    // `result`, and `centroid` traffic each stays under its analyzer
    // estimate. Heartbeat/liveness ("hb"/"live") traffic is control-plane
    // and not modeled; the fault plane's recovery replay and tombstone
    // refresh aren't either, so skip the kind checks when it is active.
    // Each link-layer ARQ retry books another tx, so scale by attempts.
    if all_finite && !d.faults_active() {
        let env = absint::comm_envelopes(&d.prog.analysis, bounds);
        let attempts = 1 + d.sim.config.retries as u64;
        for (kind, expr) in [
            ("store", &env.store),
            ("probe", &env.probe),
            ("result", &env.result),
            ("centroid", &env.centroid),
        ] {
            let Some(t) = expr.eval(&params) else {
                continue;
            };
            let cap = t.saturating_mul(attempts);
            let tx = d.metrics().tx_of(kind);
            if tx > cap {
                report.push(
                    None,
                    "static-comm-kind",
                    format!(
                        "kind `{kind}`: {tx} transmissions exceed the static \
                         envelope ({expr}) × {attempts} attempt(s) = {cap}"
                    ),
                );
            }
        }
    }
    report
}

/// Check invariant (6): per message kind, `tx == rx + lost` network-wide.
///
/// Only meaningful at quiescence (an in-flight message has been
/// transmitted but not yet delivered or dropped), so a non-quiescent
/// simulator yields an empty report.
pub fn check_message_conservation(d: &Deployment) -> InvariantReport {
    let mut report = InvariantReport::default();
    if !d.sim.is_quiescent() {
        return report;
    }
    for (kind, tx, rx, lost) in d.metrics().kind_balance() {
        if tx != rx + lost {
            report.push(
                None,
                "message-conservation",
                format!("kind `{kind}`: {tx} sent but {rx} delivered + {lost} lost"),
            );
        }
    }
    report
}

/// Check invariant (4): gathered results equal the centralized oracle's
/// for each of `preds`. Only meaningful for loss-free, failure-free runs
/// inside every stream window.
pub fn check_against_oracle(
    d: &Deployment,
    events: &[WorkloadEvent],
    preds: &[Symbol],
) -> InvariantReport {
    let mut report = InvariantReport::default();
    for &pred in preds {
        let r = oracle::check(d, events, pred);
        for t in &r.missing {
            report.push(
                None,
                "oracle-complete",
                format!("{pred}{t:?} expected but not derived"),
            );
        }
        for t in &r.spurious {
            report.push(
                None,
                "oracle-sound",
                format!("{pred}{t:?} derived but not expected"),
            );
        }
    }
    report
}

/// Convergence-to-oracle after faults heal (the fault plane's end-to-end
/// guarantee): once every crashed node has restarted (or stayed dead),
/// every partition has healed, and the network has quiesced, the gathered
/// results for each of `preds` must equal the centralized oracle's
/// fixpoint over the **surviving EDB** — the workload events that actually
/// entered the network and whose origin node is alive at the end —
/// restricted to tuples whose owner node is alive (a dead owner's results
/// are unreachable by definition, not a protocol failure).
///
/// * A tuple the oracle expects but the network lacks is a
///   `convergence-complete` violation: recovery replay or refresh failed
///   to rebuild state lost to a fault.
/// * A tuple the network holds but the oracle rejects is a
///   `convergence-sound` violation: liveness retraction failed to tear
///   down derivations whose inputs died (Theorem 3's semantics under
///   failure detection).
pub fn check_convergence(d: &Deployment, preds: &[Symbol]) -> InvariantReport {
    let mut report = InvariantReport::default();
    let surviving: Vec<WorkloadEvent> = d
        .applied_events()
        .iter()
        .filter(|e| !d.sim.is_failed(e.node))
        .cloned()
        .collect();
    for &pred in preds {
        let expected: BTreeSet<Tuple> = oracle::expected_results(d, &surviving, pred)
            .into_iter()
            .filter(|t| {
                let owner = match d.strategy {
                    Strategy::Centroid => Strategy::center(d.sim.topology()),
                    _ => ght::owner_of(d.sim.topology(), pred, t),
                };
                !d.sim.is_failed(owner)
            })
            .collect();
        let found = d.results(pred);
        for t in expected.difference(&found) {
            report.push(
                None,
                "convergence-complete",
                format!("{pred}{t:?} expected from surviving EDB but not derived"),
            );
        }
        for t in found.difference(&expected) {
            report.push(
                None,
                "convergence-sound",
                format!("{pred}{t:?} still derived but unsupported by surviving EDB"),
            );
        }
    }
    report
}

/// All invariants: structural checks plus oracle consistency for the
/// program's declared output predicates.
pub fn check_all(d: &Deployment, events: &[WorkloadEvent]) -> InvariantReport {
    let mut report = check_structural(d);
    report.merge(check_static_bounds(d));
    report.merge(check_message_conservation(d));
    report.merge(check_against_oracle(d, events, &d.prog.outputs));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::DeployConfig;
    use crate::msg::Payload;
    use crate::tupleid::{DerivationKey, FactRecord};
    use sensorlog_eval::UpdateKind;
    use sensorlog_logic::builtin::BuiltinRegistry;
    use sensorlog_logic::Term;
    use sensorlog_netsim::App;

    fn join_deployment() -> (Deployment, Vec<WorkloadEvent>) {
        let src = r#"
            .output q.
            q(X, Y) :- r1(X, T), r2(Y, T).
        "#;
        let topo = sensorlog_netsim::Topology::square_grid(4);
        let mut d = Deployment::new(
            src,
            BuiltinRegistry::standard(),
            topo,
            DeployConfig::default(),
        )
        .unwrap();
        let mk = |p: &str, args: Vec<i64>| {
            (
                Symbol::intern(p),
                Tuple::new(args.into_iter().map(Term::Int).collect()),
            )
        };
        let (p1, t1) = mk("r1", vec![1, 7]);
        let (p2, t2) = mk("r2", vec![2, 7]);
        let events = vec![
            WorkloadEvent {
                at: 10,
                node: NodeId(1),
                pred: p1,
                tuple: t1,
                kind: UpdateKind::Insert,
            },
            WorkloadEvent {
                at: 20,
                node: NodeId(14),
                pred: p2,
                tuple: t2,
                kind: UpdateKind::Insert,
            },
        ];
        d.schedule_all(events.clone());
        d.run(60_000);
        (d, events)
    }

    #[test]
    fn clean_run_upholds_all_invariants() {
        let (d, events) = join_deployment();
        assert!(d.sim.is_quiescent());
        let report = check_all(&d, &events);
        assert!(report.ok(), "{report}");
        assert_eq!(format!("{report}"), "all invariants hold");
    }

    /// Acceptance criterion: a deliberately injected count-underflow — a
    /// delete delta for a derivation the owner never saw — is caught by
    /// `check_structural`.
    #[test]
    fn injected_count_underflow_is_caught() {
        let (mut d, _) = join_deployment();
        assert!(check_structural(&d).ok(), "baseline must be green");

        let pred = Symbol::intern("q");
        let tuple = Tuple::new(vec![Term::Int(1), Term::Int(2)]);
        let phantom = TupleId {
            node: NodeId(3),
            ts: 1,
            seq: 999,
        };
        let key = DerivationKey {
            rule_id: 0,
            inputs: vec![(0, phantom)],
        };
        let victim = NodeId(5);
        d.sim.invoke(victim, |node, ctx| {
            node.on_message(
                ctx,
                NodeId(3),
                Payload::DerivDelta {
                    pred,
                    tuple: tuple.clone(),
                    key,
                    sign: -1,
                    tau: 1,
                    origin: phantom,
                },
            );
        });
        d.sim.run_to_quiescence(120_000);

        let report = check_structural(&d);
        assert!(!report.ok(), "underflow must be flagged");
        let hit = report
            .violations
            .iter()
            .find(|v| v.invariant == "count-nonnegative")
            .unwrap_or_else(|| panic!("no count violation in: {report}"));
        assert_eq!(hit.node, Some(victim));
        assert!(hit.detail.contains("-1"), "detail: {}", hit.detail);
    }

    /// Two nodes holding the *same* tuple id bound to *different* facts is
    /// a network-wide consistency violation (Definition 2: the id denotes
    /// one fact).
    #[test]
    fn conflicting_id_bindings_are_caught() {
        let (mut d, _) = join_deployment();
        assert!(check_structural(&d).ok(), "baseline must be green");

        let pred = Symbol::intern("r1");
        let stolen = TupleId {
            node: NodeId(9),
            ts: 50,
            seq: 7,
        };
        for (node, val) in [(NodeId(2), 41), (NodeId(13), 42)] {
            let fact = FactRecord::insert(pred, Tuple::new(vec![Term::Int(val)]), stolen);
            d.sim.invoke(node, |n, ctx| {
                n.on_message(ctx, NodeId(9), Payload::FloodStore { fact });
            });
        }
        d.sim.run_to_quiescence(120_000);

        let report = check_structural(&d);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.invariant == "tuple-id-unique"),
            "no id-uniqueness violation in: {report}"
        );
    }

    /// Under message loss the structural invariants still hold (the
    /// runtime degrades by dropping, never by corrupting owner state);
    /// only oracle completeness may suffer.
    #[test]
    fn lossy_run_keeps_structural_invariants() {
        let src = r#"
            .output q.
            q(X, Y) :- r1(X, T), r2(Y, T).
        "#;
        let topo = sensorlog_netsim::Topology::square_grid(4);
        let mut config = DeployConfig::default();
        config.sim.loss_prob = 0.2;
        config.sim.seed = 5;
        let mut d = Deployment::new(src, BuiltinRegistry::standard(), topo, config).unwrap();
        let mut events = Vec::new();
        for i in 0..6i64 {
            events.push(WorkloadEvent {
                at: 10 + 10 * i as u64,
                node: NodeId((i as u32 * 3) % 16),
                pred: Symbol::intern(if i % 2 == 0 { "r1" } else { "r2" }),
                tuple: Tuple::new(vec![Term::Int(i), Term::Int(7)]),
                kind: UpdateKind::Insert,
            });
        }
        d.schedule_all(events.clone());
        d.run(120_000);
        let report = check_structural(&d);
        assert!(report.ok(), "{report}");
    }

    /// Invariant (5) on a clean run: every kind balances with zero losses.
    #[test]
    fn clean_run_conserves_messages() {
        let (d, _) = join_deployment();
        assert!(d.sim.is_quiescent());
        let report = check_message_conservation(&d);
        assert!(report.ok(), "{report}");
        let rows = d.metrics().kind_balance();
        assert!(!rows.is_empty(), "a join run must send messages");
        for (kind, tx, rx, lost) in rows {
            assert_eq!(lost, 0, "loss-free run lost {lost} `{kind}` messages");
            assert_eq!(tx, rx);
        }
    }

    /// Invariant (5) under heavy loss: `lost` is nonzero, yet every
    /// transmission is still accounted for (`tx == rx + lost` per kind).
    #[test]
    fn lossy_run_conserves_messages() {
        let src = r#"
            .output q.
            q(X, Y) :- r1(X, T), r2(Y, T).
        "#;
        let topo = sensorlog_netsim::Topology::square_grid(4);
        let mut config = DeployConfig::default();
        config.sim.loss_prob = 0.25;
        config.sim.seed = 11;
        let mut d = Deployment::new(src, BuiltinRegistry::standard(), topo, config).unwrap();
        let mut events = Vec::new();
        for i in 0..8i64 {
            events.push(WorkloadEvent {
                at: 10 + 10 * i as u64,
                node: NodeId((i as u32 * 5) % 16),
                pred: Symbol::intern(if i % 2 == 0 { "r1" } else { "r2" }),
                tuple: Tuple::new(vec![Term::Int(i), Term::Int(3)]),
                kind: UpdateKind::Insert,
            });
        }
        d.schedule_all(events);
        d.run(120_000);
        assert!(d.sim.is_quiescent());
        assert!(d.metrics().lost() > 0, "0.25 loss must drop something");
        let report = check_message_conservation(&d);
        assert!(report.ok(), "{report}");
    }

    /// Invariant (5) with a mid-run crash: deliveries to the dead node
    /// book as losses, so the per-kind balance still closes.
    #[test]
    fn crashed_node_run_conserves_messages() {
        let (mut d, events) = join_deployment();
        d.fail_node(NodeId(6));
        let at = d.sim.now() + 10;
        d.schedule_all(events.iter().map(|e| WorkloadEvent { at, ..e.clone() }));
        d.run(240_000);
        assert!(d.sim.is_quiescent());
        let report = check_message_conservation(&d);
        assert!(report.ok(), "{report}");
    }
}
