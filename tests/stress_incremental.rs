//! Seed-sweep stress tests for the incremental engines against the batch
//! reference — broader than the proptest properties (hundreds of fixed
//! seeds, portable xorshift so every platform replays the same cases).
//! Kept from the root-cause harness for the cross-process seed flake:
//! these sweeps established the *centralized* engines were deterministic,
//! narrowing the fault to the distributed layer's iteration order.

use sensorlog::prelude::*;
use std::collections::BTreeSet;

fn sym(s: &str) -> Symbol {
    Symbol::intern(s)
}

fn tuple2(a: i64, b: i64) -> Tuple {
    Tuple::new(vec![Term::Int(a), Term::Int(b)])
}

const TC: &str = r#"
    t(X, Y) :- e(X, Y).
    t(X, Y) :- t(X, Z), e(Z, Y).
"#;

/// Portable xorshift64 (seed-stable across platforms and std versions).
struct R(u64);

impl R {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

const SEEDS: std::ops::Range<u64> = 1..150;

#[test]
fn stress_incremental_tc() {
    for seed in SEEDS {
        let mut rng = R(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let n_ops = 1 + (rng.next() % 30) as usize;
        let mut inc = IncrementalEngine::from_source(TC, BuiltinRegistry::standard()).unwrap();
        let mut live: BTreeSet<(i64, i64)> = BTreeSet::new();
        let mut ops_log = Vec::new();
        for i in 0..n_ops {
            let insert = rng.next().is_multiple_of(2);
            let a = (rng.next() % 6) as i64;
            let d = 1 + (rng.next() % 5) as i64;
            let b = a + d; // DAG: locally non-recursive instance class
            ops_log.push((insert, a, b));
            let u = if insert {
                live.insert((a, b));
                Update::insert(sym("e"), tuple2(a, b), i as u64)
            } else {
                live.remove(&(a, b));
                Update::delete(sym("e"), tuple2(a, b), i as u64)
            };
            inc.apply(u).unwrap();
        }
        let engine = Engine::from_source(TC, BuiltinRegistry::standard()).unwrap();
        let mut edb = Database::new();
        for &(a, b) in &live {
            edb.insert(sym("e"), tuple2(a, b));
        }
        let expect = engine.run(&edb).unwrap();
        assert_eq!(
            inc.db.sorted(sym("t")),
            expect.sorted(sym("t")),
            "seed {seed} ops {ops_log:?}"
        );
    }
}

#[test]
fn stress_incremental_negation() {
    const PROG: &str = r#"
        cov(V, K)   :- sight(V, K), supp(S, K).
        alert(V, K) :- not cov(V, K), sight(V, K).
    "#;
    for seed in SEEDS {
        let mut rng = R(seed.wrapping_mul(0x2545F4914F6CDD1D) | 1);
        let n_ops = 1 + (rng.next() % 35) as usize;
        let mut inc = IncrementalEngine::from_source(PROG, BuiltinRegistry::standard()).unwrap();
        let mut live: BTreeSet<(bool, i64, i64)> = BTreeSet::new();
        let mut ops_log = Vec::new();
        for i in 0..n_ops {
            let insert = rng.next().is_multiple_of(2);
            let is_supp = rng.next().is_multiple_of(2);
            let v = (rng.next() % 5) as i64;
            let k = (rng.next() % 3) as i64;
            ops_log.push((insert, is_supp, v, k));
            let pred = if is_supp { sym("supp") } else { sym("sight") };
            let u = if insert {
                live.insert((is_supp, v, k));
                Update::insert(pred, tuple2(v, k), i as u64)
            } else {
                live.remove(&(is_supp, v, k));
                Update::delete(pred, tuple2(v, k), i as u64)
            };
            inc.apply(u).unwrap();
        }
        let engine = Engine::from_source(PROG, BuiltinRegistry::standard()).unwrap();
        let mut edb = Database::new();
        for &(is_supp, v, k) in &live {
            let pred = if is_supp { sym("supp") } else { sym("sight") };
            edb.insert(pred, tuple2(v, k));
        }
        let expect = engine.run(&edb).unwrap();
        assert_eq!(
            inc.db.sorted(sym("alert")),
            expect.sorted(sym("alert")),
            "seed {seed} ops {ops_log:?}"
        );
        assert_eq!(
            inc.db.sorted(sym("cov")),
            expect.sorted(sym("cov")),
            "seed {seed} ops {ops_log:?}"
        );
    }
}

#[test]
fn stress_counting_engine() {
    // Non-recursive join + negation program against the batch reference.
    const PROG: &str = r#"
        q(X, Y) :- a(X, Z), b(Z, Y).
        p(X, Y) :- a(X, Y), not b(X, Y).
    "#;
    use sensorlog::eval::counting::CountingEngine;
    for seed in SEEDS {
        let mut rng = R(seed.wrapping_mul(0xDA942042E4DD58B5) | 1);
        let n_ops = 1 + (rng.next() % 30) as usize;
        let mut cnt = CountingEngine::from_source(PROG, BuiltinRegistry::standard()).unwrap();
        let mut live: BTreeSet<(bool, i64, i64)> = BTreeSet::new();
        let mut ops_log = Vec::new();
        for i in 0..n_ops {
            let insert = rng.next().is_multiple_of(2);
            let is_a = rng.next().is_multiple_of(2);
            let x = (rng.next() % 4) as i64;
            let y = (rng.next() % 4) as i64;
            ops_log.push((insert, is_a, x, y));
            let pred = if is_a { sym("a") } else { sym("b") };
            let u = if insert {
                live.insert((is_a, x, y));
                Update::insert(pred, tuple2(x, y), i as u64)
            } else {
                live.remove(&(is_a, x, y));
                Update::delete(pred, tuple2(x, y), i as u64)
            };
            cnt.apply(u).unwrap();
        }
        let engine = Engine::from_source(PROG, BuiltinRegistry::standard()).unwrap();
        let mut edb = Database::new();
        for &(is_a, x, y) in &live {
            let pred = if is_a { sym("a") } else { sym("b") };
            edb.insert(pred, tuple2(x, y));
        }
        let expect = engine.run(&edb).unwrap();
        assert_eq!(
            cnt.db.sorted(sym("q")),
            expect.sorted(sym("q")),
            "seed {seed} ops {ops_log:?}"
        );
        assert_eq!(
            cnt.db.sorted(sym("p")),
            expect.sorted(sym("p")),
            "seed {seed} ops {ops_log:?}"
        );
    }
}
