//! Acceptance check for the telemetry layer: with telemetry enabled, the
//! JSONL snapshot of a run contains per-predicate message counters,
//! per-phase span timings, and merged network-wide histograms — asserted
//! for both the shortest-path-tree (sptree) and the random-geometric-graph
//! experiment configurations.

use sensorlog::core::deploy::{DeployConfig, Deployment, WorkloadEvent};
use sensorlog::core::strategy::Strategy;
use sensorlog::core::workload::graph_edges;
use sensorlog::prelude::*;

const LOGIC_J: &str = r#"
    .output j.
    j(0, 0).
    j(X, 1) :- g(0, X).
    jp(Y, D + 1) :- j(Y, D'), (D + 1) > D', j(X, D), g(X, Y).
    j(Y, D + 1) :- g(X, Y), j(X, D), not jp(Y, D + 1).
"#;

const JOIN3: &str = r#"
    .output q.
    q(X, Y) :- r1(N1, X, K), r2(N2, Y, K).
"#;

/// The snapshot shape every telemetry-enabled run must produce.
fn assert_full_snapshot(snap: &Snapshot, label: &str, preds: &[&str]) {
    // Per-predicate message counters: every workload predicate shows up
    // under a `pred:` scope with per-plane send counts.
    let scopes = snap.pred_scopes();
    for p in preds {
        assert!(
            scopes.contains(&p.to_string()),
            "{label}: no pred:{p} scope"
        );
    }
    let sent: u64 = ["sent_store", "sent_probe", "sent_result", "sent_centroid"]
        .iter()
        .map(|n| snap.counter_sum("pred:", n))
        .sum();
    assert!(sent > 0, "{label}: no per-predicate send counters");

    // Per-phase span timings, with wall-time actually recorded.
    for phase in ["core.update.initiate", "sim.route", "sim.deliver"] {
        let p = snap
            .phase(phase)
            .unwrap_or_else(|| panic!("{label}: phase {phase} missing"));
        assert!(p.count > 0, "{label}: phase {phase} never fired");
    }
    assert!(
        snap.phases.iter().any(|p| p.wall_ns > 0),
        "{label}: no wall time recorded in any phase"
    );
    assert!(
        snap.phase("core.join.probe").is_some_and(|p| p.sim_ms > 0),
        "{label}: join probes accumulated no simulated latency"
    );

    // Merged network-wide histogram rollups, present in the JSONL too.
    for hist in ["tx_bytes", "hop_delay_ms"] {
        let m = snap
            .merged_hist(hist)
            .unwrap_or_else(|| panic!("{label}: no merged {hist} histogram"));
        assert!(m.count > 0, "{label}: merged {hist} is empty");
    }
    let jsonl = snap.to_jsonl();
    for needle in [
        r#""scope":"merged","name":"tx_bytes""#,
        r#""type":"phase""#,
        r#""scope":"pred:"#,
    ] {
        assert!(jsonl.contains(needle), "{label}: JSONL lacks {needle}");
    }

    // Static-bound cross-validation: observed per-predicate peaks were
    // recorded, and none of them exceeded the analyzer's memory bounds.
    assert!(
        snap.gauges
            .iter()
            .any(|g| g.scope.starts_with("pred:") && g.name == "peak_stored" && g.value > 0),
        "{label}: no per-predicate peak_stored gauges recorded"
    );
    assert_eq!(
        snap.gauge("global", "diag.bound.violations"),
        0,
        "{label}: observed state exceeded the static analyzer's bounds"
    );
}

#[test]
fn sptree_snapshot_is_complete() {
    let topo = Topology::square_grid(4);
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.0 },
            ..RtConfig::default()
        },
        sim: SimConfig::default(),
        telemetry: Telemetry::enabled(),
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(LOGIC_J, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    d.schedule_all(graph_edges(&topo, 100, 200));
    d.run(200_000_000);
    assert_full_snapshot(&d.telemetry_snapshot(), "sptree", &["g", "j", "jp"]);
}

#[test]
fn geometric_snapshot_is_complete() {
    let topo = Topology::random_geometric(25, 4.0, 1.7, 97).unwrap();
    let cfg = DeployConfig {
        rt: RtConfig {
            strategy: Strategy::Perpendicular { band_width: 1.7 },
            tau_s: 4_000,
            tau_j: 8_000,
            ..RtConfig::default()
        },
        sim: SimConfig {
            seed: 13,
            ..SimConfig::default()
        },
        telemetry: Telemetry::enabled(),
        ..DeployConfig::default()
    };
    let mut d = Deployment::new(JOIN3, BuiltinRegistry::standard(), topo.clone(), cfg).unwrap();
    let mut events = Vec::new();
    let mut value = 0i64;
    for node in topo.nodes() {
        for pred in ["r1", "r2"] {
            value += 1;
            events.push(WorkloadEvent {
                at: 500 + 100 * node.0 as u64,
                node,
                pred: Symbol::intern(pred),
                tuple: Tuple::new(vec![
                    Term::Int(node.0 as i64),
                    Term::Int(value),
                    // Both streams at a node share a key: joins guaranteed.
                    Term::Int(node.0 as i64 % 12),
                ]),
                kind: UpdateKind::Insert,
            });
        }
    }
    d.schedule_all(events);
    d.run(60_000_000);
    assert_full_snapshot(&d.telemetry_snapshot(), "geometric", &["q", "r1", "r2"]);
}
