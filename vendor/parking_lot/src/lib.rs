//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the non-poisoning `parking_lot` API
//! (guards returned directly, no `Result`). Poisoned locks are recovered
//! rather than propagated: a panicking reader/writer in this codebase only
//! ever aborts the current test, and the interner/index state it guards is
//! rebuilt from scratch per process.

use std::sync;

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn const_new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&*self.read()).finish()
    }
}

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
