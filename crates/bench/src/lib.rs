//! # sensorlog-bench
//!
//! Experiment harness for the reproduction: one function per paper figure
//! or table (reconstructed Section VI — see DESIGN.md), shared run
//! machinery, and text-table output. The `figures` binary drives it:
//!
//! ```text
//! cargo run --release -p sensorlog-bench --bin figures -- all
//! cargo run --release -p sensorlog-bench --bin figures -- fig4 fig8
//! ```

pub mod common;
pub mod experiments;
pub mod table;

pub use table::Table;

/// All experiment ids, in report order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "table1", "table2", "table3", "table4", "table5",
];

/// Run experiments by id; unknown ids are reported and skipped.
pub fn run(ids: &[&str]) -> Vec<Table> {
    let mut out = Vec::new();
    let mut fig45: Option<(Table, Table)> = None;
    let mut tab45: Option<(Table, Table)> = None;
    for &id in ids {
        match id {
            "fig4" | "fig5" => {
                if fig45.is_none() {
                    fig45 = Some(experiments::joins::fig4_fig5());
                }
                let (f4, f5) = fig45.clone().expect("computed");
                out.push(if id == "fig4" { f4 } else { f5 });
            }
            "fig6" => out.push(experiments::joins::fig6()),
            "fig7" => out.push(experiments::joins::fig7()),
            "fig8" => out.push(experiments::sptree::fig8()),
            "fig9" => out.push(experiments::robustness::fig9()),
            "fig10" => out.push(experiments::negation::fig10()),
            "fig11" => out.push(experiments::ablation::fig11()),
            "fig12" => out.push(experiments::ablation::fig12()),
            "fig13" => out.push(experiments::failures::fig13()),
            "fig14" => out.push(experiments::aggregates::fig14()),
            "fig15" => out.push(experiments::holddown::fig15()),
            "fig16" => out.push(experiments::geometric::fig16()),
            "table1" => out.push(experiments::memory::table1()),
            "table2" => out.push(experiments::robustness::table2()),
            "table3" => out.push(experiments::tracesum::table3()),
            "table4" | "table5" => {
                if tab45.is_none() {
                    tab45 = Some(experiments::telemetry::table4_table5());
                }
                let (t4, t5) = tab45.clone().expect("computed");
                out.push(if id == "table4" { t4 } else { t5 });
            }
            other => eprintln!("unknown experiment id: {other}"),
        }
    }
    out
}
